//! Boundary-exact swap-volume closed forms.
//!
//! The §3 formulas in the crate root are *steady-state* counts: they
//! charge every task the full swap-in/swap-out of its working set, as if
//! reuse distance were always larger than device memory. A real (or
//! simulated) execution is slightly cheaper at deterministic schedule
//! boundaries, where two adjacent tasks share a tensor that therefore
//! never leaves the device:
//!
//! * **loss turnaround** — the last layer's forward is immediately
//!   followed by its backward (only the loss computation intervenes), so
//!   its weights stay resident: 2 swaps saved per microbatch;
//! * **microbatch seam** — layer 0's backward is immediately followed by
//!   layer 0's forward of the next microbatch: 2 swaps saved per seam
//!   (`m − 1` seams);
//! * **just-in-time update** — Harmony updates a layer the moment its
//!   gradient is ready, so exactly one weight round-trip per layer is
//!   saved relative to the deferred-update count;
//! * **stage-edge effects** — a 1F1B pipeline stage has its own loss-edge
//!   and seam structure, with a constant-per-stage saving;
//! * **resident stages** — a stage whose persistent state *fits* on its
//!   GPU swaps its weights exactly twice (cold fetch + final writeback).
//!
//! Every saving is a closed form in `(m, N, L)` and the stage partition,
//! so exact equality — byte for byte — between the simulator and this
//! module is a meaningful differential test: the conformance harness
//! (`harmony-harness`) asserts it across a pinned matrix of
//! configurations, and any behavioural drift in either model breaks it.
//!
//! Validity regime (the harness's pinned matrix): uniform layers,
//! `pack = 1`, full input-batch grouping, plain SGD (no optimizer
//! slots), and tight device memory — capacity holds one task working set
//! but not two, except that a single-layer pipeline stage's persistent
//! state fits. Gradient buffers are layer-sized (`|dW| = |W|` per layer).

use crate::Scheme;

/// Inputs to the boundary-exact forms.
///
/// Unlike [`crate::Params`] these are expressed per layer, because the
/// boundary corrections are per-layer effects (the steady-state forms
/// only ever see the totals `|W| = L·w`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactParams {
    /// Microbatches per GPU per iteration (`m`).
    pub m: u64,
    /// Number of GPUs (`N`).
    pub n: u64,
    /// Number of (uniform) layers (`L`).
    pub layers: u64,
    /// Per-layer weight bytes (`w`; total `|W| = L·w`). Also the
    /// per-layer gradient-buffer bytes.
    pub layer_weight_bytes: u64,
    /// Pipeline stage sizes in layers (sums to `layers`). Ignored by the
    /// DP schemes. Order is irrelevant — only the multiset matters.
    pub stage_layers: Vec<u64>,
    /// Bytes of one stage-boundary activation for one microbatch.
    pub boundary_act_bytes: u64,
}

impl ExactParams {
    /// Parameters for `layers` uniform layers on `n` GPUs with the
    /// balanced contiguous stage partition the planners produce for
    /// uniform loads: `layers mod n` stages of `⌈L/N⌉` layers and the
    /// rest of `⌊L/N⌋` (never an empty stage while `layers ≥ n`).
    pub fn uniform(
        m: u64,
        n: u64,
        layers: u64,
        layer_weight_bytes: u64,
        boundary_act_bytes: u64,
    ) -> Self {
        let base = layers / n.max(1);
        let rem = layers % n.max(1);
        let stage_layers = (0..n).map(|s| base + u64::from(s < rem)).collect();
        ExactParams {
            m,
            n,
            layers,
            layer_weight_bytes,
            stage_layers,
            boundary_act_bytes,
        }
    }

    /// Total microbatches per iteration (`M = m·N`) — what each pipeline
    /// stage processes.
    pub fn m_total(&self) -> u64 {
        self.m * self.n
    }
}

/// Exact weight-tensor swap volume per iteration.
///
/// In units of one layer's weight bytes:
///
/// | scheme      | layer-swaps                                          |
/// |-------------|------------------------------------------------------|
/// | baseline-DP | `[(4m+2)·L − (4m−2)] · N`                            |
/// | baseline-PP | `Σ_stages c(s)` with `c(1) = 2`, `c(2) = 4M+6`, `c(s≥3) = (4M+2)·s − (4M−4)` |
/// | Harmony-DP  | `(3L − 1) · N`                                       |
/// | Harmony-PP  | `3L − N`                                             |
///
/// Baseline-DP's `4m−2` correction is the loss turnaround (`2m`) plus
/// the microbatch seams (`2(m−1)`). Harmony's just-in-time update makes
/// the per-layer count `m`-independent, minus one round-trip per replica
/// (DP) or per stage (PP). A single-GPU "pipeline" degenerates to the
/// microbatch-major DP schedule and inherits its correction.
///
/// The corrections vanish asymptotically — the steady-state forms are
/// the `m, L → ∞` limit:
///
/// ```
/// use harmony_analytical::exact::{weight_swap_volume_exact, ExactParams};
/// use harmony_analytical::{weight_swap_volume, Params, Scheme};
/// let (m, n, l, w) = (64, 4, 480, 1024);
/// let exact = weight_swap_volume_exact(
///     Scheme::BaselineDp, &ExactParams::uniform(m, n, l, w, 0));
/// let steady = weight_swap_volume(Scheme::BaselineDp, &Params {
///     m, n, weight_bytes: l * w,
///     opt_state_bytes: 0, stash_bytes_per_ubatch: 0, act_bytes_per_ubatch: 0,
/// });
/// let rel = (steady - exact) as f64 / steady as f64;
/// assert!(rel < 0.003, "correction should be sub-0.3%: {rel}");
/// ```
pub fn weight_swap_volume_exact(scheme: Scheme, p: &ExactParams) -> u64 {
    let w = p.layer_weight_bytes;
    let (m, n, l) = (p.m, p.n, p.layers);
    match scheme {
        Scheme::BaselineDp => ((4 * m + 2) * l - (4 * m - 2)) * n * w,
        Scheme::HarmonyDp => (3 * l - 1) * n * w,
        Scheme::HarmonyPp => (3 * l - n) * w,
        Scheme::BaselinePp => {
            if n == 1 {
                return ((4 * m + 2) * l - (4 * m - 2)) * w;
            }
            let mt = p.m_total();
            p.stage_layers
                .iter()
                .map(|&s| match s {
                    0 => 0,
                    1 => 2,
                    2 => 4 * mt + 6,
                    _ => (4 * mt + 2) * s - (4 * mt - 4),
                })
                .sum::<u64>()
                * w
        }
        Scheme::Pipe1F1B => {
            // Backward reads the stashed version, so the live-weight
            // class only sees forward reads (2 per microbatch per layer)
            // and the update round-trip — and the baseline-PP boundary
            // savings evaporate: the loss-turnaround and microbatch-seam
            // adjacencies were backward-side weight reads, and the
            // updates run after the drain with the working set long
            // evicted. When every stage is pressured (≥ 2 layers) the
            // exact count **is** the steady-state form. Each
            // single-layer stage shrinks the pipeline's drained working
            // set enough that one more warmup-adjacent weight stays
            // resident: with k such stages the savings are
            // 2(N−1), 2(N−2), …, 2(N−k) layer-swaps (m-independent).
            let _ = m;
            let k = p.stage_layers.iter().filter(|&&s| s == 1).count() as u64;
            let steady = (2 * p.m_total() + 2) * l;
            let saving: u64 = (0..k).map(|j| 2 * (n - 1).saturating_sub(j)).sum();
            (steady - saving) * w
        }
    }
}

/// Exact stashed-weight-version swap volume per iteration — zero for all
/// schemes but 1F1B weight stashing.
///
/// Each microbatch's forward writes one per-layer weight copy (swap-out)
/// that its backward reads back (swap-in): `2·M` layer-swaps per layer in
/// steady state. The last layer of the pipeline is the exception: its
/// forward is immediately followed (modulo the loss computation) by its
/// backward, so that stash never leaves the device at all —
/// `2·M·(L−1)` layer-swaps total.
pub fn weight_stash_swap_volume_exact(scheme: Scheme, p: &ExactParams) -> u64 {
    match scheme {
        Scheme::Pipe1F1B => {
            let w = p.layer_weight_bytes;
            let mt = p.m_total();
            2 * mt * (p.layers - 1) * w
        }
        _ => 0,
    }
}

/// Exact gradient-buffer swap volume per iteration.
///
/// Harmony's counts equal the steady-state forms exactly (`2L·N` /
/// `2L` layer-swaps — the just-in-time update leaves no boundary to
/// save). Baseline-PP is `(2M+2)·s` per pressured stage, a resident
/// stage contributing 2. Baseline-DP pays `(2m+2)·L` per replica plus —
/// when `N > 1` — one extra gradient round-trip (`2L`) per replica for
/// the buffers the ring all-reduce dirties after the local backward has
/// already retired them.
pub fn grad_swap_volume_exact(scheme: Scheme, p: &ExactParams) -> u64 {
    let w = p.layer_weight_bytes;
    let (m, n, l) = (p.m, p.n, p.layers);
    match scheme {
        Scheme::BaselineDp => {
            let allreduce = if n > 1 { 2 * l } else { 0 };
            ((2 * m + 2) * l + allreduce) * n * w
        }
        Scheme::HarmonyDp => 2 * l * n * w,
        Scheme::HarmonyPp => 2 * l * w,
        Scheme::BaselinePp => {
            if n == 1 {
                return (2 * m + 2) * l * w;
            }
            let mt = p.m_total();
            p.stage_layers
                .iter()
                .map(|&s| match s {
                    0 => 0,
                    1 => 2,
                    _ => (2 * mt + 2) * s,
                })
                .sum::<u64>()
                * w
        }
        Scheme::Pipe1F1B => {
            // Steady per layer, like baseline-PP under pressure — but
            // single-layer stages are *not* gradient-resident here (the
            // stash copies evict them). Instead, as for the weight
            // class, each of the k single-layer stages converts one
            // warmup-adjacent gradient round-trip into residency:
            // savings 2N, 2(N−1), …, 2(N−k+1) layer-swaps.
            let k = p.stage_layers.iter().filter(|&&s| s == 1).count() as u64;
            let steady = (2 * p.m_total() + 2) * l;
            let saving: u64 = (0..k).map(|j| 2 * (n - j)).sum();
            (steady - saving) * w
        }
    }
}

/// Exact optimizer-state swap volume — zero in the pinned regime (plain
/// SGD carries no optimizer state; with slots the update working set
/// would not fit the tight topology and the regime assumption breaks).
pub fn opt_state_swap_volume_exact(_scheme: Scheme, _p: &ExactParams) -> u64 {
    0
}

/// Exact device-to-device traffic, where it is schedule-independent.
///
/// The DP schemes move nothing GPU-to-GPU (the ring all-reduce is
/// modelled as channel traffic, not tensor migration). Baseline-PP
/// crosses `N − 1` stage boundaries twice per microbatch (activation
/// forward, gradient backward): `M·(N−1)·2·b`. Harmony-PP's boundary
/// traffic splits between direct p2p and host bounces depending on
/// memory state at each handoff — schedule-sensitive, so no exact form
/// (`None`); the harness bounds it by baseline-PP's instead.
pub fn p2p_volume_exact(scheme: Scheme, p: &ExactParams) -> Option<u64> {
    match scheme {
        Scheme::BaselineDp | Scheme::HarmonyDp => Some(0),
        Scheme::BaselinePp | Scheme::Pipe1F1B => {
            Some(p.m_total() * (p.n - 1) * 2 * p.boundary_act_bytes)
        }
        Scheme::HarmonyPp => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{grad_swap_volume, weight_swap_volume, Params};

    fn steady_params(m: u64, n: u64, l: u64, w: u64) -> Params {
        Params {
            m,
            n,
            weight_bytes: l * w,
            opt_state_bytes: 0,
            stash_bytes_per_ubatch: 0,
            act_bytes_per_ubatch: 0,
        }
    }

    #[test]
    fn exact_never_exceeds_steady_state() {
        for scheme in Scheme::ALL {
            for m in 1..=8 {
                for n in 1..=4 {
                    for l in [4, 6, 8, 12] {
                        let p = ExactParams::uniform(m, n, l, 4096, 256);
                        let sp = steady_params(m, n, l, 4096);
                        assert!(
                            weight_swap_volume_exact(scheme, &p) <= weight_swap_volume(scheme, &sp),
                            "{scheme:?} m={m} n={n} l={l} weight"
                        );
                        // Baseline-DP's grad form has the all-reduce
                        // surcharge the steady-state model omits; all
                        // others are bounded by it.
                        if scheme != Scheme::BaselineDp || n == 1 {
                            assert!(
                                grad_swap_volume_exact(scheme, &p) <= grad_swap_volume(scheme, &sp),
                                "{scheme:?} m={m} n={n} l={l} grad"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn corrections_vanish_asymptotically() {
        for scheme in Scheme::ALL {
            let small = {
                let p = ExactParams::uniform(2, 2, 8, 4096, 256);
                let sp = steady_params(2, 2, 8, 4096);
                1.0 - weight_swap_volume_exact(scheme, &p) as f64
                    / weight_swap_volume(scheme, &sp) as f64
            };
            let large = {
                let p = ExactParams::uniform(64, 2, 128, 4096, 256);
                let sp = steady_params(64, 2, 128, 4096);
                1.0 - weight_swap_volume_exact(scheme, &p) as f64
                    / weight_swap_volume(scheme, &sp) as f64
            };
            // Pipe-1F1B's pressured-partition correction is already
            // exactly zero, so "shrinks" degenerates to "stays zero".
            assert!(
                large <= small && large < 0.02,
                "{scheme:?}: correction should shrink ({small} -> {large})"
            );
            if scheme == Scheme::Pipe1F1B {
                assert_eq!(small, 0.0, "pressured partitions have no correction");
            }
        }
    }

    #[test]
    fn harmony_weight_dominance_is_exact_too() {
        // The paper's ordering survives the boundary corrections.
        for m in 1..=8 {
            for n in 1..=4 {
                for l in [4u64, 6, 8] {
                    let p = ExactParams::uniform(m, n, l, 4096, 256);
                    let hdp = weight_swap_volume_exact(Scheme::HarmonyDp, &p);
                    let bdp = weight_swap_volume_exact(Scheme::BaselineDp, &p);
                    let hpp = weight_swap_volume_exact(Scheme::HarmonyPp, &p);
                    assert!(hdp <= bdp, "m={m} n={n} l={l}");
                    assert!(hpp <= hdp, "m={m} n={n} l={l}");
                }
            }
        }
    }

    #[test]
    fn uniform_partition_is_balanced() {
        let p = ExactParams::uniform(1, 3, 8, 1, 0);
        let mut sizes = p.stage_layers.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 3, 3]);
        let p = ExactParams::uniform(1, 4, 6, 1, 0);
        let mut sizes = p.stage_layers.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 2, 2]);
    }
}
