//! Property-based tests on the closed-form swap model for arbitrary
//! workload parameters.

use harmony_analytical::{
    breakdown, weight_reduction_factor_dp, weight_swap_volume, Params, Scheme,
};
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = Params> {
    (
        1u64..32,
        1u64..16,
        1u64..1_000_000,
        0u64..2_000_000,
        0u64..500_000,
        0u64..500_000,
    )
        .prop_map(|(m, n, w, k, s, a)| Params {
            m,
            n,
            weight_bytes: w,
            opt_state_bytes: k,
            stash_bytes_per_ubatch: s,
            act_bytes_per_ubatch: a,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn harmony_never_worse_per_class(p in params_strategy()) {
        let pairs = [
            (Scheme::HarmonyDp, Scheme::BaselineDp),
            (Scheme::HarmonyPp, Scheme::BaselinePp),
        ];
        for (h, b) in pairs {
            let hb = breakdown(h, &p);
            let bb = breakdown(b, &p);
            prop_assert!(hb.weight <= bb.weight);
            prop_assert!(hb.grad <= bb.grad);
            prop_assert!(hb.opt_state <= bb.opt_state);
            prop_assert!(hb.stash <= bb.stash);
            prop_assert!(hb.act <= bb.act);
            prop_assert!(hb.total() <= bb.total());
        }
    }

    #[test]
    fn harmony_pp_dominates_everything(p in params_strategy()) {
        let hpp = breakdown(Scheme::HarmonyPp, &p).total();
        for s in [Scheme::BaselineDp, Scheme::BaselinePp, Scheme::HarmonyDp] {
            prop_assert!(hpp <= breakdown(s, &p).total());
        }
    }

    #[test]
    fn baseline_dp_scales_linearly_in_n(p in params_strategy()) {
        let mut p1 = p;
        p1.n = 1;
        let v1 = breakdown(Scheme::BaselineDp, &p1).total();
        let vn = breakdown(Scheme::BaselineDp, &p).total();
        prop_assert_eq!(vn, v1 * p.n);
    }

    #[test]
    fn harmony_pp_weight_term_is_n_independent(p in params_strategy()) {
        let mut q = p;
        q.n = p.n.saturating_mul(2).max(1);
        prop_assert_eq!(
            weight_swap_volume(Scheme::HarmonyPp, &p),
            weight_swap_volume(Scheme::HarmonyPp, &q)
        );
    }

    #[test]
    fn reduction_factor_matches_formula_ratio(m in 1u64..64) {
        let p = Params {
            m,
            n: 3,
            weight_bytes: 999,
            opt_state_bytes: 0,
            stash_bytes_per_ubatch: 0,
            act_bytes_per_ubatch: 0,
        };
        let ratio = weight_swap_volume(Scheme::BaselineDp, &p) as f64
            / weight_swap_volume(Scheme::HarmonyDp, &p) as f64;
        prop_assert!((ratio - weight_reduction_factor_dp(m)).abs() < 1e-9);
    }

    #[test]
    fn swap_volume_monotone_in_every_size_parameter(p in params_strategy()) {
        for scheme in Scheme::ALL {
            let base = breakdown(scheme, &p).total();
            for grow in 0..4 {
                let mut q = p;
                match grow {
                    0 => q.weight_bytes += 1000,
                    1 => q.opt_state_bytes += 1000,
                    2 => q.stash_bytes_per_ubatch += 1000,
                    _ => q.act_bytes_per_ubatch += 1000,
                }
                prop_assert!(
                    breakdown(scheme, &q).total() >= base,
                    "{:?} shrank when a tensor grew", scheme
                );
            }
        }
    }
}
