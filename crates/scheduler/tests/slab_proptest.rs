//! Property-based tests of the generational slab backing the executor's
//! pooled transfer records: recycling never confuses generations, stale
//! handles are typed errors (never silent reads of a recycled slot), and
//! slot growth tracks the peak of concurrently live records — the
//! structural no-per-event-allocation contract the executor counters
//! export.

use harmony_sched::{Slab, SlabError};
use proptest::prelude::*;

/// An op sequence: `true` inserts the payload, `false` removes the
/// oldest live handle (no-op when empty).
fn ops_strategy() -> impl Strategy<Value = Vec<(bool, u64)>> {
    prop::collection::vec((any::<bool>(), 0u64..1_000_000), 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Live handles always resolve to their own payload; handles whose
    /// slot was freed (and possibly recycled) always fail with the typed
    /// stale/vacant error and never return another record's payload.
    #[test]
    fn recycling_never_leaks_across_generations(ops in ops_strategy()) {
        let mut slab: Slab<u64> = Slab::new();
        let mut live: Vec<(harmony_sched::SlabHandle, u64)> = Vec::new();
        let mut dead: Vec<(harmony_sched::SlabHandle, u64)> = Vec::new();
        for (insert, payload) in ops {
            if insert {
                let h = slab.insert(payload);
                live.push((h, payload));
            } else if !live.is_empty() {
                let (h, payload) = live.remove(0);
                let got = slab.remove(h);
                prop_assert_eq!(got.unwrap(), payload);
                dead.push((h, payload));
            }
            for &(h, payload) in &live {
                prop_assert_eq!(*slab.get(h).unwrap(), payload);
            }
            for &(h, _) in &dead {
                // The slot may be vacant or recycled by a newer record;
                // either way the old handle must fail typed, and a
                // recycled slot must carry a *different* generation.
                match slab.get(h) {
                    Err(SlabError::Stale { expected, found, .. }) => {
                        prop_assert!(expected != found);
                    }
                    Err(SlabError::Vacant { .. }) => {}
                    Err(other) => {
                        prop_assert!(false, "unexpected error for dead handle: {}", other);
                    }
                    Ok(v) => {
                        prop_assert!(false, "dead handle silently read a live record: {}", v);
                    }
                }
            }
        }
    }

    /// Slots ever grown equal the peak of concurrently live records —
    /// steady-state churn recycles instead of allocating, so the
    /// high-water mark is bounded by the workload's concurrency (for the
    /// executor: the plan), never by the op count.
    #[test]
    fn growth_tracks_peak_liveness_not_op_count(ops in ops_strategy()) {
        let mut slab: Slab<u64> = Slab::new();
        let mut live: Vec<harmony_sched::SlabHandle> = Vec::new();
        let mut peak = 0usize;
        for (insert, payload) in ops {
            if insert {
                live.push(slab.insert(payload));
                peak = peak.max(live.len());
            } else if !live.is_empty() {
                let h = live.remove(0);
                slab.remove(h).unwrap();
            }
        }
        prop_assert_eq!(slab.high_water() as usize, peak);
        prop_assert_eq!(slab.fresh_allocs(), slab.high_water() as u64);
    }
}
