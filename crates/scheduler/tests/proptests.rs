//! Property-based tests: every planner must emit a structurally valid plan
//! for arbitrary models and workload configs, and the executor must
//! complete it (or fail with a typed memory error) deterministically.

use harmony_models::{LayerClass, LayerSpec, ModelSpec};
use harmony_sched::{
    plan_baseline_dp, plan_baseline_pp, plan_harmony_dp, plan_harmony_pp, ExecError, SimExecutor,
    WorkloadConfig,
};
use harmony_topology::presets::{commodity_server, CommodityParams, GBPS};
use proptest::prelude::*;

fn model_strategy() -> impl Strategy<Value = ModelSpec> {
    prop::collection::vec((64u64..4096, 16u64..256), 1..10).prop_map(|layers| ModelSpec {
        name: "prop".to_string(),
        layers: layers
            .into_iter()
            .enumerate()
            .map(|(i, (params, out))| LayerSpec {
                name: format!("L{i}"),
                class: LayerClass::Other,
                params,
                fwd_flops_per_sample: params * 2,
                out_elems_per_sample: out,
                extra_stash_elems_per_sample: out,
                in_elems_per_sample: out,
            })
            .collect(),
        seq_len: 1,
    })
}

fn workload_strategy() -> impl Strategy<Value = WorkloadConfig> {
    (
        1usize..4,
        1u64..4,
        1usize..4,
        0u64..3,
        prop::option::of(1usize..5),
    )
        .prop_map(|(m, ub, pack, opt, group)| WorkloadConfig {
            microbatches: m,
            ubatch_size: ub,
            pack_size: pack,
            opt_slots: opt,
            group_size: group,
            recompute: false,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_planners_emit_valid_plans(
        model in model_strategy(),
        w in workload_strategy(),
        n in 1usize..5,
    ) {
        for plan in [
            plan_baseline_dp(&model, n, &w).unwrap(),
            plan_harmony_dp(&model, n, &w).unwrap(),
            plan_baseline_pp(&model, n, &w).unwrap(),
            plan_harmony_pp(&model, n, &w).unwrap(),
        ] {
            prop_assert!(plan.validate().is_ok(), "{}: {:?}", plan.name, plan.validate());
            prop_assert_eq!(plan.queues.len(), n);
            prop_assert!(plan.samples_per_iteration > 0);
            prop_assert_eq!(plan.demand_bytes.len(), n);
        }
    }

    #[test]
    fn executor_completes_or_fails_typed(
        model in model_strategy(),
        w in workload_strategy(),
        n in 1usize..4,
        mem_kib in 24u64..4096,
    ) {
        let topo = commodity_server(CommodityParams {
            num_gpus: n,
            gpus_per_switch: n,
            pcie_bw: GBPS,
            host_uplink_bw: GBPS,
            gpu_mem: mem_kib * 1024,
            gpu_flops: 1e9,
        }).unwrap();
        let plan = plan_harmony_pp(&model, n, &w).unwrap();
        match SimExecutor::new(&topo, &model, &plan).and_then(|e| e.run()) {
            Ok((summary, _)) => {
                prop_assert!(summary.sim_secs > 0.0);
                for g in 0..n {
                    prop_assert!(summary.peak_mem_bytes[g] <= mem_kib * 1024);
                }
            }
            // Too little memory for some working set is a legal outcome —
            // but it must be the typed error, never a hang or panic.
            Err(ExecError::Mem(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
    }

    #[test]
    fn execution_is_deterministic_for_any_config(
        model in model_strategy(),
        w in workload_strategy(),
    ) {
        let topo = commodity_server(CommodityParams {
            num_gpus: 2,
            gpus_per_switch: 2,
            pcie_bw: GBPS,
            host_uplink_bw: GBPS,
            gpu_mem: 1 << 22,
            gpu_flops: 1e9,
        }).unwrap();
        let plan = plan_harmony_dp(&model, 2, &w).unwrap();
        let run = || {
            SimExecutor::new(&topo, &model, &plan)
                .and_then(|e| e.run())
                .map(|(s, _)| (s.sim_secs.to_bits(), s.global_swap(), s.p2p_bytes))
                .map_err(|e| e.to_string())
        };
        prop_assert_eq!(run(), run());
    }
}
