//! Integration tests: run all five schemes end-to-end on the simulator and
//! check that the paper's claims *emerge* from the shared executor.

use harmony_models::{LayerClass, LayerSpec, ModelSpec};
use harmony_sched::{
    plan_baseline_dp, plan_baseline_pp, plan_harmony_dp, plan_harmony_pp, SimExecutor,
    WorkloadConfig,
};
use harmony_topology::presets::{commodity_server, CommodityParams, GBPS};
use harmony_topology::Topology;
use harmony_trace::summary::RunSummary;

/// A uniform synthetic model: `r` identical layers (the paper's analytical
/// setup: "a simplified DNN model with one type of layer ... same runtime
/// and memory footprint").
fn uniform_model(r: usize, params: u64) -> ModelSpec {
    let layers = (0..r)
        .map(|i| LayerSpec {
            name: format!("L{i}"),
            class: LayerClass::Other,
            params,
            fwd_flops_per_sample: params * 2,
            out_elems_per_sample: 64,
            extra_stash_elems_per_sample: 128,
            in_elems_per_sample: 64,
        })
        .collect();
    ModelSpec {
        name: format!("uniform{r}x{params}"),
        layers,
        seq_len: 1,
    }
}

/// A topology whose per-GPU memory admits roughly one task working set at
/// a time (the paper's pressure regime).
fn pressured_topo(n: usize, gpu_mem: u64) -> Topology {
    commodity_server(CommodityParams {
        num_gpus: n,
        gpus_per_switch: n.max(1),
        pcie_bw: 1.0 * GBPS,
        host_uplink_bw: 1.0 * GBPS,
        gpu_mem,
        gpu_flops: 1e9,
    })
    .unwrap()
}

fn workload(m: usize) -> WorkloadConfig {
    WorkloadConfig {
        microbatches: m,
        ubatch_size: 1,
        pack_size: 1,
        opt_slots: 2,
        group_size: None,
        recompute: false,
    }
}

fn run_dp_baseline(model: &ModelSpec, topo: &Topology, m: usize) -> RunSummary {
    let plan = plan_baseline_dp(model, topo.num_gpus(), &workload(m)).unwrap();
    SimExecutor::new(topo, model, &plan)
        .unwrap()
        .run()
        .unwrap()
        .0
}

fn run_dp_harmony(model: &ModelSpec, topo: &Topology, m: usize) -> RunSummary {
    let plan = plan_harmony_dp(model, topo.num_gpus(), &workload(m)).unwrap();
    SimExecutor::new(topo, model, &plan)
        .unwrap()
        .run()
        .unwrap()
        .0
}

fn run_pp_baseline(model: &ModelSpec, topo: &Topology, m: usize) -> RunSummary {
    let plan = plan_baseline_pp(model, topo.num_gpus(), &workload(m)).unwrap();
    SimExecutor::new(topo, model, &plan)
        .unwrap()
        .run()
        .unwrap()
        .0
}

fn run_pp_harmony(model: &ModelSpec, topo: &Topology, m: usize) -> RunSummary {
    let plan = plan_harmony_pp(model, topo.num_gpus(), &workload(m)).unwrap();
    SimExecutor::new(topo, model, &plan)
        .unwrap()
        .run()
        .unwrap()
        .0
}

// With params = 4096 (16 KiB per weight tensor): task working sets are
// W 16K + dW 16K + K 32K + stash ~0.8K + acts ~0.5K. Update needs 64 KiB.
// 96 KiB of GPU memory holds one update working set plus slack but far
// less than the full model (6 layers × 64 KiB of state = 384 KiB).
const PARAMS: u64 = 4096;
const LAYERS: usize = 6;
const GPU_MEM: u64 = 96 * 1024;

#[test]
fn all_four_schemes_complete_under_pressure() {
    let model = uniform_model(LAYERS, PARAMS);
    let topo = pressured_topo(2, GPU_MEM);
    for summary in [
        run_dp_baseline(&model, &topo, 2),
        run_dp_harmony(&model, &topo, 2),
        run_pp_baseline(&model, &topo, 2),
        run_pp_harmony(&model, &topo, 2),
    ] {
        assert!(summary.sim_secs > 0.0, "{}", summary.name);
        assert!(summary.global_swap() > 0, "{} must swap", summary.name);
    }
}

#[test]
fn schemes_complete_without_pressure_and_barely_swap() {
    // With memory to spare, only cold-start swap-ins (weights etc. begin on
    // host, as in any framework) and the final checkpoint flush remain.
    let model = uniform_model(LAYERS, PARAMS);
    let topo = pressured_topo(2, 64 * 1024 * 1024);
    let s = run_dp_harmony(&model, &topo, 2);
    let state_bytes: u64 = 4 * model.total_weight_bytes(); // W + dW + 2×K
                                                           // Cold-in ≤ state (+ inputs); flush-out ≤ state; nothing swaps twice.
    let input_bytes = 2 * 2 * 64 * 4; // replicas × µbatches × elems × 4 B
    assert!(
        s.global_swap() <= 2 * 2 * state_bytes + input_bytes, // 2 replicas
        "{} swapped {} B",
        s.name,
        s.global_swap()
    );
}

#[test]
fn harmony_dp_weight_swaps_match_3nw_within_tolerance() {
    let model = uniform_model(LAYERS, PARAMS);
    let n = 2;
    let m = 3;
    let topo = pressured_topo(n, GPU_MEM);
    let s = run_dp_harmony(&model, &topo, m);
    let w = model.total_weight_bytes();
    let expected = 3 * n as u64 * w;
    let measured = s.swap_by_class["weight"];
    let ratio = measured as f64 / expected as f64;
    assert!(
        (0.65..=1.35).contains(&ratio),
        "harmony-dp weight swap {measured} vs 3N|W| = {expected} (ratio {ratio:.2})"
    );
}

#[test]
fn baseline_dp_weight_swaps_match_4m2nw_within_tolerance() {
    let model = uniform_model(LAYERS, PARAMS);
    let n = 2;
    let m = 3;
    let topo = pressured_topo(n, GPU_MEM);
    let s = run_dp_baseline(&model, &topo, m);
    let w = model.total_weight_bytes();
    let expected = (4 * m as u64 + 2) * n as u64 * w;
    let measured = s.swap_by_class["weight"];
    let ratio = measured as f64 / expected as f64;
    assert!(
        (0.6..=1.4).contains(&ratio),
        "baseline-dp weight swap {measured} vs (4m+2)N|W| = {expected} (ratio {ratio:.2})"
    );
}

#[test]
fn harmony_dp_beats_baseline_dp_on_swap_and_throughput() {
    let model = uniform_model(LAYERS, PARAMS);
    let topo = pressured_topo(4, GPU_MEM);
    let b = run_dp_baseline(&model, &topo, 4);
    let h = run_dp_harmony(&model, &topo, 4);
    assert!(
        h.global_swap() * 2 < b.global_swap(),
        "harmony {} vs baseline {} swap bytes",
        h.global_swap(),
        b.global_swap()
    );
    assert!(
        h.throughput() > b.throughput(),
        "harmony {:.3} vs baseline {:.3} samples/s",
        h.throughput(),
        b.throughput()
    );
}

#[test]
fn baseline_dp_swap_volume_grows_linearly_with_gpus() {
    // Fig 2(a) right axis: global swap-out volume ∝ N.
    let model = uniform_model(LAYERS, PARAMS);
    let m = 2;
    let mut volumes = Vec::new();
    for n in 1..=4 {
        let topo = pressured_topo(n, GPU_MEM);
        volumes.push(run_dp_baseline(&model, &topo, m).global_swap_out() as f64);
    }
    for n in 2..=4 {
        let ratio = volumes[n - 1] / volumes[0];
        assert!(
            (ratio - n as f64).abs() < 0.5,
            "swap-out at N={n} is {ratio:.2}× the N=1 volume (want ≈{n})"
        );
    }
}

#[test]
fn baseline_dp_throughput_saturates_with_gpus() {
    // Fig 2(a) left axis: adding GPUs does not scale throughput — the
    // shared host uplink throttles the swap traffic.
    let model = uniform_model(LAYERS, PARAMS);
    let m = 2;
    let t1 = {
        let topo = pressured_topo(1, GPU_MEM);
        run_dp_baseline(&model, &topo, m).throughput()
    };
    let t4 = {
        let topo = pressured_topo(4, GPU_MEM);
        run_dp_baseline(&model, &topo, m).throughput()
    };
    // Four GPUs deliver far less than 4× of one GPU (paper shows ~flat).
    assert!(
        t4 < 2.0 * t1,
        "baseline DP scaled too well: {t1:.3} -> {t4:.3} samples/s"
    );
}

#[test]
fn harmony_pp_dominates_every_scheme_on_swap_volume() {
    // §3: "Harmony-PP dominates savings compared to all other baselines."
    let model = uniform_model(8, PARAMS);
    let topo = pressured_topo(4, GPU_MEM);
    let m = 2;
    let hpp = run_pp_harmony(&model, &topo, m).global_swap();
    for other in [
        run_dp_baseline(&model, &topo, m).global_swap(),
        run_dp_harmony(&model, &topo, m).global_swap(),
        run_pp_baseline(&model, &topo, m).global_swap(),
    ] {
        assert!(
            hpp <= other,
            "harmony-pp swapped {hpp} B, a competitor only {other} B"
        );
    }
}

#[test]
fn baseline_pp_swap_is_imbalanced_harmony_pp_is_not() {
    // Fig 2(c): 1F1B head stages swap more than the tail; Harmony's
    // grouped schedule + balanced partition evens it out.
    //
    // The skew needs activation stashes that are large relative to device
    // memory: the head stage holds S−s in-flight microbatch stashes and is
    // forced to spill them, while the tail consumes each stash right away.
    let layers = (0..8)
        .map(|i| LayerSpec {
            name: format!("L{i}"),
            class: LayerClass::Other,
            params: PARAMS,
            fwd_flops_per_sample: PARAMS * 2,
            out_elems_per_sample: 64,
            extra_stash_elems_per_sample: 4096, // 16 KiB stash per layer/µbatch
            in_elems_per_sample: 64,
        })
        .collect();
    let model = ModelSpec {
        name: "stash-heavy".to_string(),
        layers,
        seq_len: 1,
    };
    // Per stage: state = 2 layers × 64 KiB = 128 KiB. Head in-flight stash
    // ≈ 2 × 16 KiB × 4 = 128 KiB; tail ≈ 32 KiB. 200 KiB capacity pressures
    // the head but not the tail.
    let topo = pressured_topo(4, 200 * 1024);
    let m = 3;
    let b = run_pp_baseline(&model, &topo, m);
    let h = run_pp_harmony(&model, &topo, m);
    let per_gpu = |s: &RunSummary| -> Vec<u64> {
        s.swap_in_bytes
            .iter()
            .zip(&s.swap_out_bytes)
            .map(|(i, o)| i + o)
            .collect()
    };
    let bb = per_gpu(&b);
    let hh = per_gpu(&h);
    // Baseline head stage (gpu0) must swap more than its tail (gpu3).
    assert!(
        bb[0] > bb[3],
        "baseline pp per-gpu swap {bb:?} shows no head>tail skew"
    );
    // Harmony's worst/best ratio must be tighter than baseline's
    // (an unbounded baseline ratio — `None` — is looser than any finite
    // harmony ratio).
    let imb = |s: &RunSummary| s.swap_imbalance().unwrap_or(f64::INFINITY);
    assert!(
        imb(&h) < imb(&b),
        "harmony imbalance {:.2} not tighter than baseline {:.2} ({hh:?} vs {bb:?})",
        imb(&h),
        imb(&b)
    );
}

#[test]
fn harmony_pp_moves_boundary_traffic_to_p2p() {
    let model = uniform_model(8, PARAMS);
    let topo = pressured_topo(4, GPU_MEM);
    let h = run_pp_harmony(&model, &topo, 2);
    assert!(h.p2p_bytes > 0, "stage handoffs must ride p2p links");
}

#[test]
fn executor_is_deterministic() {
    let model = uniform_model(LAYERS, PARAMS);
    let topo = pressured_topo(3, GPU_MEM);
    let run = || {
        let s = run_dp_harmony(&model, &topo, 2);
        (
            s.sim_secs.to_bits(),
            s.global_swap(),
            s.p2p_bytes,
            s.swap_by_class.clone(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn oversized_working_set_reports_insufficient_memory() {
    // A single update working set (W + dW + 2×K = 16×params bytes) that
    // exceeds device capacity must surface a typed error, not hang.
    let model = uniform_model(2, 256 * 1024); // 1 MiB weights/layer, 4 MiB update set
    let topo = pressured_topo(1, 2 * 1024 * 1024);
    let plan = plan_baseline_dp(&model, 1, &workload(1)).unwrap();
    let err = SimExecutor::new(&topo, &model, &plan)
        .unwrap()
        .run()
        .unwrap_err();
    assert!(matches!(err, harmony_sched::ExecError::Mem(_)), "got {err}");
}

mod prefetch {
    use super::*;

    fn run_scheme(model: &ModelSpec, topo: &Topology, m: usize, prefetch: bool) -> RunSummary {
        let mut plan = plan_harmony_pp(model, topo.num_gpus(), &workload(m)).unwrap();
        if prefetch {
            plan.scheme = plan.scheme.clone().with_prefetch();
        }
        SimExecutor::new(topo, model, &plan)
            .unwrap()
            .run()
            .unwrap()
            .0
    }

    #[test]
    fn prefetch_completes_and_is_deterministic() {
        let model = uniform_model(LAYERS, PARAMS);
        let topo = pressured_topo(2, 4 * GPU_MEM);
        let a = run_scheme(&model, &topo, 2, true);
        let b = run_scheme(&model, &topo, 2, true);
        assert_eq!(a.sim_secs.to_bits(), b.sim_secs.to_bits());
        assert_eq!(a.global_swap(), b.global_swap());
    }

    #[test]
    fn prefetch_shortens_the_critical_path_with_headroom() {
        // With memory for two working sets, overlapping fetch with compute
        // must not be slower, and should measurably help.
        let model = uniform_model(LAYERS, PARAMS);
        let topo = pressured_topo(2, 4 * GPU_MEM);
        let serial = run_scheme(&model, &topo, 2, false);
        let overlapped = run_scheme(&model, &topo, 2, true);
        assert!(
            overlapped.sim_secs <= serial.sim_secs,
            "prefetch slowed things down: {:.6}s vs {:.6}s",
            overlapped.sim_secs,
            serial.sim_secs
        );
    }

    #[test]
    fn prefetch_degrades_gracefully_under_tight_memory() {
        // When the double buffer does not fit, the executor must fall back
        // to serial fetching, not deadlock or error.
        let model = uniform_model(LAYERS, PARAMS);
        let topo = pressured_topo(2, GPU_MEM);
        let s = run_scheme(&model, &topo, 2, true);
        assert!(s.sim_secs > 0.0);
        for g in 0..2 {
            assert!(s.peak_mem_bytes[g] <= GPU_MEM);
        }
    }

    #[test]
    fn prefetch_never_violates_capacity() {
        let model = uniform_model(LAYERS, PARAMS);
        for mem_mult in [1u64, 2, 4, 8] {
            let cap = GPU_MEM * mem_mult;
            let topo = pressured_topo(2, cap);
            let s = run_scheme(&model, &topo, 3, true);
            for g in 0..2 {
                assert!(
                    s.peak_mem_bytes[g] <= cap,
                    "mem_mult {mem_mult}: peak {} > cap {cap}",
                    s.peak_mem_bytes[g]
                );
            }
        }
    }
}

#[test]
fn baseline_dp_saturates_the_host_uplink() {
    // Direct evidence for Fig 2(a)'s mechanism: under baseline DP at N=4,
    // the shared host uplink is busy most of the run while per-GPU lanes
    // have slack.
    let model = uniform_model(LAYERS, PARAMS);
    let topo = pressured_topo(4, GPU_MEM);
    let s = run_dp_baseline(&model, &topo, 3);
    let uplink = s.channel_utilisation("sw0->host").expect("uplink exists");
    assert!(
        uplink > 0.3,
        "uplink utilisation {uplink:.2} too low to be a bottleneck"
    );
    // And it concentrates: at N=1 the same workload leaves the uplink far
    // less busy per unit of work — utilisation grows with GPU count.
    let s1 = run_dp_baseline(&model, &pressured_topo(1, GPU_MEM), 3);
    let uplink1 = s1.channel_utilisation("sw0->host").expect("uplink exists");
    assert!(
        uplink > uplink1,
        "N=4 uplink {uplink:.2} should exceed N=1 {uplink1:.2}"
    );
    // Harmony cuts the pressure on the same link.
    let h = run_dp_harmony(&model, &topo, 3);
    let h_uplink = h.channel_utilisation("sw0->host").expect("uplink exists");
    assert!(
        h_uplink < uplink,
        "harmony uplink {h_uplink:.2} vs baseline {uplink:.2}"
    );
}

mod multi_iteration {
    use super::*;

    #[test]
    fn volumes_scale_linearly_with_iterations() {
        let model = uniform_model(LAYERS, PARAMS);
        let topo = pressured_topo(2, GPU_MEM);
        let plan = plan_harmony_dp(&model, 2, &workload(2)).unwrap();
        let run_k = |k: u32| {
            SimExecutor::with_iterations(&topo, &model, &plan, k)
                .unwrap()
                .run()
                .unwrap()
                .0
        };
        let s1 = run_k(1);
        let s3 = run_k(3);
        assert_eq!(s3.samples, 3 * s1.samples);
        // Steady-state per-iteration swap converges: iterations 2..3 cost
        // at most what iteration 1 did (shared flush amortises).
        let per_iter_1 = s1.global_swap() as f64;
        let per_iter_3 = s3.global_swap() as f64 / 3.0;
        assert!(
            per_iter_3 < per_iter_1 * 1.05 && per_iter_3 > per_iter_1 * 0.6,
            "per-iteration swap {per_iter_3:.0} vs single-run {per_iter_1:.0}"
        );
        // Throughput improves slightly (cold start amortised).
        assert!(s3.throughput() >= s1.throughput() * 0.95);
    }

    #[test]
    fn steady_state_baseline_dp_matches_formula_tighter() {
        // With 4 iterations and capacity pinned to one working set (SGD,
        // 36 KiB — the paper's analytical regime), the per-iteration weight
        // volume must track (4m+2)N|W|.
        let model = uniform_model(LAYERS, PARAMS);
        let n = 2;
        let m = 3;
        let topo = pressured_topo(n, 36 * 1024);
        let w_cfg = WorkloadConfig {
            opt_slots: 0,
            ..workload(m)
        };
        let plan = plan_baseline_dp(&model, n, &w_cfg).unwrap();
        let s = SimExecutor::with_iterations(&topo, &model, &plan, 4)
            .unwrap()
            .run()
            .unwrap()
            .0;
        let w = model.total_weight_bytes();
        let expected = (4 * m as u64 + 2) * n as u64 * w;
        let measured = s.swap_by_class["weight"] / 4;
        let ratio = measured as f64 / expected as f64;
        assert!(
            (0.7..=1.3).contains(&ratio),
            "steady-state weight swap ratio {ratio:.2}"
        );
    }

    #[test]
    fn iterations_pipeline_across_gpus_in_pp() {
        // Consecutive iterations overlap: 2 iterations must take less than
        // 2× one iteration's makespan on a pipeline (the head starts
        // iteration 2 while the tail finishes iteration 1).
        let model = uniform_model(8, PARAMS);
        let topo = pressured_topo(4, 4 * GPU_MEM);
        let plan = plan_harmony_pp(&model, 4, &workload(1)).unwrap();
        let t1 = SimExecutor::with_iterations(&topo, &model, &plan, 1)
            .unwrap()
            .run()
            .unwrap()
            .0
            .sim_secs;
        let t2 = SimExecutor::with_iterations(&topo, &model, &plan, 2)
            .unwrap()
            .run()
            .unwrap()
            .0
            .sim_secs;
        assert!(t2 < 2.0 * t1, "no overlap: {t2:.4}s vs 2×{t1:.4}s");
    }

    #[test]
    fn zero_iterations_is_rejected() {
        let model = uniform_model(2, PARAMS);
        let topo = pressured_topo(1, GPU_MEM);
        let plan = plan_baseline_dp(&model, 1, &workload(1)).unwrap();
        assert!(SimExecutor::with_iterations(&topo, &model, &plan, 0).is_err());
    }

    #[test]
    fn multi_iteration_is_deterministic() {
        let model = uniform_model(LAYERS, PARAMS);
        let topo = pressured_topo(2, GPU_MEM);
        let plan = plan_harmony_pp(&model, 2, &workload(2)).unwrap();
        let run = || {
            SimExecutor::with_iterations(&topo, &model, &plan, 3)
                .unwrap()
                .run()
                .map(|(s, _)| (s.sim_secs.to_bits(), s.global_swap()))
                .unwrap()
        };
        assert_eq!(run(), run());
    }
}

#[test]
fn cross_gpu_circular_wait_is_reported_as_stuck() {
    // Failure injection: hand-build a plan whose two GPUs each wait on a
    // task the *other* GPU has queued behind its own blocked task. The
    // executor must detect the deadlock and report Stuck (with
    // diagnostics), never hang.
    use harmony_sched::{ExecutionPlan, SchemeConfig, WorkItem};
    use harmony_taskgraph::{GraphConfig, TaskGraph, TaskKind};
    let model = uniform_model(2, PARAMS);
    let graph = TaskGraph::build(
        &model,
        GraphConfig {
            microbatches: 1,
            ..GraphConfig::default()
        },
    )
    .unwrap();
    let id = |k| graph.id_of(k).unwrap();
    // GPU0 holds B(p1) (needs Loss→F(p1)) in front of F(p0);
    // GPU1 holds F(p1) (needs F(p0)) in front of everything else.
    let q0 = vec![
        WorkItem::Task {
            replica: 0,
            task: id(TaskKind::Backward { pack: 1, ubatch: 0 }),
        },
        WorkItem::Task {
            replica: 0,
            task: id(TaskKind::Forward { pack: 0, ubatch: 0 }),
        },
        WorkItem::Task {
            replica: 0,
            task: id(TaskKind::Backward { pack: 0, ubatch: 0 }),
        },
        WorkItem::Task {
            replica: 0,
            task: id(TaskKind::Update { pack: 0 }),
        },
    ];
    let q1 = vec![
        WorkItem::Task {
            replica: 0,
            task: id(TaskKind::Forward { pack: 1, ubatch: 0 }),
        },
        WorkItem::Task {
            replica: 0,
            task: id(TaskKind::Loss { ubatch: 0 }),
        },
        WorkItem::Task {
            replica: 0,
            task: id(TaskKind::Update { pack: 1 }),
        },
    ];
    let plan = ExecutionPlan {
        name: "deadlock".to_string(),
        graph,
        replicas: 1,
        queues: vec![q0, q1],
        scheme: SchemeConfig::harmony("deadlock"),
        samples_per_iteration: 1,
        demand_bytes: vec![0, 0],
    };
    plan.validate().unwrap();
    let topo = pressured_topo(2, 16 * GPU_MEM);
    let err = SimExecutor::new(&topo, &model, &plan)
        .unwrap()
        .run()
        .unwrap_err();
    assert!(
        matches!(err, harmony_sched::ExecError::Stuck(_)),
        "expected Stuck, got {err}"
    );
}

mod resilience {
    //! The graceful-degradation layer (DESIGN §10): post-fault capacity
    //! shortfalls spill-and-retry instead of aborting, p2p fetches over a
    //! degraded link cancel and reroute through host memory, and the run
    //! summary reports a typed `ResilienceOutcome` — all bit-for-bit
    //! deterministic for a fixed seed, and byte-invisible on clean runs.
    use super::*;
    use harmony_sched::{ExecError, Fault, TimedFault};
    use harmony_topology::Endpoint;

    /// Clean reference duration of a scheme, to place faults mid-run.
    fn clean_secs(model: &ModelSpec, topo: &Topology, m: usize) -> f64 {
        run_pp_harmony(model, topo, m).sim_secs
    }

    fn run_with(
        model: &ModelSpec,
        topo: &Topology,
        m: usize,
        faults: &[TimedFault],
        resilience: Option<u64>,
    ) -> Result<(RunSummary, String), ExecError> {
        let plan = plan_harmony_pp(model, topo.num_gpus(), &workload(m)).unwrap();
        let mut ex = SimExecutor::new(topo, model, &plan)?;
        ex.inject_faults(faults)?;
        if let Some(seed) = resilience {
            ex.enable_resilience(seed);
        }
        let (mut summary, trace) = ex.run()?;
        summary.elapsed_secs = 0.0;
        summary.setup_secs = 0.0;
        let tj = trace.to_json();
        Ok((summary, tj))
    }

    /// An early, harsh capacity squeeze (1% of nominal, clamped to bytes
    /// already in use) makes later working sets infeasible: without the
    /// layer the run aborts with `InsufficientMemory`; with it armed the
    /// run completes, reporting spills/retries — and twice in a row gives
    /// byte-identical results.
    #[test]
    fn capacity_squeeze_spills_instead_of_aborting() {
        let model = uniform_model(LAYERS, PARAMS);
        let topo = pressured_topo(2, GPU_MEM);
        let secs = clean_secs(&model, &topo, 2);
        let faults = [TimedFault {
            at: secs * 0.05,
            fault: Fault::CapacitySqueeze {
                gpu: 0,
                factor: 0.01,
            },
        }];
        let err = run_with(&model, &topo, 2, &faults, None).unwrap_err();
        assert!(
            matches!(
                err,
                ExecError::Mem(harmony_memory::MemError::InsufficientMemory { .. })
            ),
            "squeeze without resilience must abort infeasibly, got {err}"
        );
        let (summary, trace_a) = run_with(&model, &topo, 2, &faults, Some(42)).unwrap();
        let out = summary.resilience.as_ref().expect("outcome populated");
        assert!(
            out.spill_events > 0,
            "squeeze must trigger spill mode: {out:?}"
        );
        assert!(out.retries > 0, "spill mode retries with backoff: {out:?}");
        assert!(out.degraded(), "final mode must report degradation");
        // Deterministic: same seed, same fault plan → same bytes.
        let (summary_b, trace_b) = run_with(&model, &topo, 2, &faults, Some(42)).unwrap();
        assert_eq!(summary.to_json(), summary_b.to_json());
        assert_eq!(trace_a, trace_b);
    }

    /// Degrading a channel of an inter-GPU route to 10% while a p2p move
    /// is in flight cancels the move and re-fetches via host bounce. A
    /// clean probe run records when p2p transfers are issued (and over
    /// which route); the fault then lands a hair after one of those
    /// instants — guaranteed mid-flight, since execution is identical up
    /// to the fault time. Every faulted run must complete, and at least
    /// one must report a rerouted transfer.
    #[test]
    fn degraded_link_cancels_and_reroutes_p2p() {
        use harmony_sched::{ExecContext, ExecEvent, ExecObserver};
        use harmony_topology::ChannelId;
        use std::cell::RefCell;
        use std::rc::Rc;

        // Issue instants of inter-GPU transfers: (virtual time, channel).
        #[derive(Debug)]
        struct P2pProbe {
            inter_gpu: Vec<Vec<ChannelId>>,
            seen: Rc<RefCell<Vec<(f64, ChannelId)>>>,
        }
        impl ExecObserver for P2pProbe {
            fn on_event(&mut self, ctx: &ExecContext<'_>, event: &ExecEvent) {
                if let ExecEvent::TransferIssued { route, bytes } = event {
                    if *bytes > 0 && self.inter_gpu.iter().any(|r| r == route) {
                        self.seen.borrow_mut().push((ctx.sim.now(), route[0]));
                    }
                }
            }
        }

        let model = uniform_model(8, PARAMS);
        let topo = pressured_topo(4, GPU_MEM);
        let plan = plan_harmony_pp(&model, topo.num_gpus(), &workload(2)).unwrap();
        let mut inter_gpu = Vec::new();
        for a in 0..topo.num_gpus() {
            for b in 0..topo.num_gpus() {
                if a != b {
                    inter_gpu.push(
                        topo.route(Endpoint::Gpu(a), Endpoint::Gpu(b))
                            .unwrap()
                            .to_vec(),
                    );
                }
            }
        }
        let seen = Rc::new(RefCell::new(Vec::new()));
        let mut probe_ex = SimExecutor::new(&topo, &model, &plan).unwrap();
        probe_ex.attach_observer(Box::new(P2pProbe {
            inter_gpu,
            seen: seen.clone(),
        }));
        probe_ex.run().unwrap();
        let candidates: Vec<(f64, ChannelId)> = seen.borrow().iter().copied().take(16).collect();
        assert!(
            !candidates.is_empty(),
            "harmony-pp on 4 GPUs must issue inter-GPU transfers"
        );
        let mut rerouted_total = 0;
        for &(at, channel) in &candidates {
            // 0.1 µs into a ≥10 µs transfer: decisively mid-flight.
            let faults = [TimedFault {
                at: at + 1e-7,
                fault: Fault::LinkBandwidth {
                    channel,
                    factor: 0.1,
                },
            }];
            let (summary, _) = run_with(&model, &topo, 2, &faults, Some(7))
                .unwrap_or_else(|e| panic!("fault at t={at:.6} must not abort: {e}"));
            let out = summary.resilience.expect("outcome populated");
            rerouted_total += out.rerouted_transfers;
        }
        assert!(
            rerouted_total > 0,
            "no candidate instant rerouted — cancellation path never engaged"
        );
    }

    /// Byte-invisibility on clean runs: with no faults injected, arming
    /// the layer changes nothing — trace JSON and summary JSON are
    /// byte-identical with resilience on and off (the summary's
    /// `resilience` field stays `None` without an injected fault plan).
    #[test]
    fn clean_runs_are_byte_identical_with_layer_armed() {
        let model = uniform_model(LAYERS, PARAMS);
        let topo = pressured_topo(2, GPU_MEM);
        let (s_off, t_off) = run_with(&model, &topo, 2, &[], None).unwrap();
        let (s_on, t_on) = run_with(&model, &topo, 2, &[], Some(123)).unwrap();
        assert!(
            s_on.resilience.is_none(),
            "clean summary must not grow a field"
        );
        assert_eq!(s_off.to_json(), s_on.to_json());
        assert_eq!(t_off, t_on);
    }

    /// A fault plan that never actually bites (a gentle squeeze with lots
    /// of headroom) still yields a populated, all-zero outcome in Normal
    /// mode — "ran with the layer armed" is visible in the summary.
    #[test]
    fn harmless_fault_plan_reports_normal_mode() {
        let model = uniform_model(LAYERS, PARAMS);
        // 4× headroom: a 0.9 squeeze never pinches.
        let topo = pressured_topo(2, 4 * GPU_MEM);
        let faults = [TimedFault {
            at: 1e-6,
            fault: Fault::CapacitySqueeze {
                gpu: 0,
                factor: 0.9,
            },
        }];
        let (summary, _) = run_with(&model, &topo, 2, &faults, Some(1)).unwrap();
        let out = summary.resilience.expect("armed + faults → populated");
        assert!(
            !out.degraded(),
            "nothing should have been absorbed: {out:?}"
        );
        assert_eq!(out.final_mode.as_str(), "normal");
    }
}
