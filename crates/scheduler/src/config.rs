//! Scheme and workload configuration.

/// Which eviction policy the memory manager uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Least-recently-used (baseline per-GPU virtualization).
    Lru,
    /// Next-use-aware (Harmony: scheduler hints approximate Belady OPT).
    NextUseAware,
}

/// The knobs that distinguish baselines from Harmony. See crate docs for
/// the scheme matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeConfig {
    /// Scheme display name.
    pub name: String,
    /// Allow device-to-device transfers when a needed tensor is resident
    /// on a peer GPU (Harmony optimization 3). When false, such tensors
    /// bounce through host memory (counted as swap volume).
    pub p2p: bool,
    /// Drop clean, host-backed tensors on eviction instead of writing them
    /// back (Harmony's cleanliness tracking). Baselines always write back.
    pub clean_drop: bool,
    /// Eviction policy.
    pub policy: PolicyKind,
    /// Overlap the next task's fetches with the current compute
    /// (double-buffering, §4). Off by default for every scheme — the
    /// memory-vs-overlap trade-off is studied by the prefetch ablation.
    pub prefetch: bool,
}

impl SchemeConfig {
    /// Baseline per-GPU virtualization behaviour.
    pub fn baseline(name: impl Into<String>) -> Self {
        SchemeConfig {
            name: name.into(),
            p2p: false,
            clean_drop: false,
            policy: PolicyKind::Lru,
            prefetch: false,
        }
    }

    /// Harmony behaviour (all optimizations on).
    pub fn harmony(name: impl Into<String>) -> Self {
        SchemeConfig {
            name: name.into(),
            p2p: true,
            clean_drop: true,
            policy: PolicyKind::NextUseAware,
            prefetch: false,
        }
    }

    /// Enables prefetch/double-buffering on this scheme.
    pub fn with_prefetch(mut self) -> Self {
        self.prefetch = true;
        self
    }
}

/// Workload parameters shared by all planners. `Eq + Hash` (every field
/// is integral) so a workload can key the sweep-session plan cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadConfig {
    /// Microbatches per GPU (`m` of the analytical model). For pipeline
    /// schemes the mini-batch is `m · N` microbatches, all of which flow
    /// through every stage.
    pub microbatches: usize,
    /// Samples (sequences) per microbatch.
    pub ubatch_size: u64,
    /// Layers per pack (task granularity; 1 = layer-level, Fig 4).
    pub pack_size: usize,
    /// Optimizer state slots per parameter (2 = Adam).
    pub opt_slots: u64,
    /// Input-batch **group size** for the Harmony planners: how many
    /// microbatches a pack runs back-to-back before the schedule moves to
    /// the next pack (`None` = all microbatches, the §3 analytical
    /// regime). This is the central knob of the paper's §4
    /// memory–performance tango: larger groups cut weight swaps (one
    /// swap-in per group instead of per microbatch) but serialise pipeline
    /// stages at group granularity, shrinking overlap. Fig 4 uses groups
    /// of 2. Baselines ignore it.
    pub group_size: Option<usize>,
    /// Recompute-instead-of-stash (gradient checkpointing at pack
    /// granularity): eliminates per-layer stash tensors and their swap
    /// traffic at the price of re-running each pack's forward during its
    /// backward. Applies to every scheme (it is a task-graph property).
    pub recompute: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            microbatches: 4,
            ubatch_size: 5,
            pack_size: 1,
            opt_slots: 2,
            group_size: None,
            recompute: false,
        }
    }
}

impl WorkloadConfig {
    /// Effective group size given `m` total microbatches.
    pub fn effective_group(&self, m: usize) -> usize {
        self.group_size.unwrap_or(m).clamp(1, m.max(1))
    }
}

impl WorkloadConfig {
    /// The matching task-graph config for a given microbatch count
    /// (pipeline planners scale `m` by the GPU count).
    pub fn graph_config(&self, microbatches: usize) -> harmony_taskgraph::GraphConfig {
        harmony_taskgraph::GraphConfig {
            microbatches,
            ubatch_size: self.ubatch_size,
            pack_size: self.pack_size,
            opt_slots: self.opt_slots,
            recompute: self.recompute,
            ..harmony_taskgraph::GraphConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_and_harmony_presets_differ_on_all_knobs() {
        let b = SchemeConfig::baseline("b");
        let h = SchemeConfig::harmony("h");
        assert!(!b.p2p && h.p2p);
        assert!(!b.clean_drop && h.clean_drop);
        assert_ne!(b.policy, h.policy);
    }

    #[test]
    fn graph_config_carries_workload_fields() {
        let w = WorkloadConfig {
            microbatches: 3,
            ubatch_size: 7,
            pack_size: 2,
            opt_slots: 1,
            group_size: None,
            recompute: false,
        };
        let g = w.graph_config(12);
        assert_eq!(g.microbatches, 12);
        assert_eq!(g.ubatch_size, 7);
        assert_eq!(g.pack_size, 2);
        assert_eq!(g.opt_slots, 1);
    }
}
