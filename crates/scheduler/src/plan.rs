//! Execution plans: the planner → executor interface.

use harmony_taskgraph::{TaskGraph, TaskId, TensorRef};

use crate::config::SchemeConfig;

/// One unit of work in a GPU's queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkItem {
    /// Run a task from the graph of `replica` (replica = GPU index for DP;
    /// always 0 for pipeline schemes, whose graph is shared).
    Task {
        /// Replica whose graph/tensors the task operates on.
        replica: usize,
        /// Task id within that replica's graph.
        task: TaskId,
    },
    /// Gradient AllReduce across all GPUs for one pack (data parallelism).
    /// Acts as a barrier: every GPU must reach its matching item.
    AllReduce {
        /// Pack index whose gradients are reduced.
        pack: usize,
    },
}

/// A complete lowered schedule, ready for the [`crate::SimExecutor`].
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    /// Scheme + workload display name.
    pub name: String,
    /// The (per-replica) task graph. DP replicates it logically — tensor
    /// instances are per replica — while pipeline schemes share replica 0.
    pub graph: TaskGraph,
    /// Number of logical replicas of the training state (DP: one per GPU;
    /// PP: 1).
    pub replicas: usize,
    /// Ordered work queue per GPU.
    pub queues: Vec<Vec<WorkItem>>,
    /// Scheme behaviour knobs.
    pub scheme: SchemeConfig,
    /// Samples processed per iteration (throughput numerator).
    pub samples_per_iteration: u64,
    /// Logical memory demand per GPU in bytes — what would have to be
    /// resident simultaneously without virtualization (Fig 2c's y-axis).
    pub demand_bytes: Vec<u64>,
}

impl ExecutionPlan {
    /// Total number of work items across all queues.
    pub fn total_items(&self) -> usize {
        self.queues.iter().map(Vec::len).sum()
    }

    /// Exclusive upper bounds `(layers, ubatches)` over every tensor
    /// reference reachable from this plan's graph: reads, writes, **and
    /// frees** of every task (the executor resolves freed refs too), plus
    /// pack layer ranges (collectives target per-layer gradients). Used to
    /// size the executor's dense key space defensively — a graph that
    /// references a layer or microbatch beyond the model/workload config
    /// still gets in-bounds indices.
    pub fn ref_dims(&self) -> (usize, usize) {
        let mut layers = 0usize;
        let mut ubatches = 0usize;
        let mut visit = |rf: &TensorRef| {
            let (l, u) = match *rf {
                TensorRef::Weight { layer }
                | TensorRef::Grad { layer }
                | TensorRef::OptState { layer } => (layer + 1, 0),
                TensorRef::Activation { layer, ubatch }
                | TensorRef::ActGrad { layer, ubatch }
                | TensorRef::Stash { layer, ubatch }
                | TensorRef::WeightStash { layer, ubatch } => (layer + 1, ubatch + 1),
                TensorRef::Input { ubatch } => (0, ubatch + 1),
            };
            layers = layers.max(l);
            ubatches = ubatches.max(u);
        };
        for t in self.graph.tasks() {
            for rf in t.reads.iter().chain(&t.writes).chain(&t.frees) {
                visit(rf);
            }
        }
        for p in self.graph.packs() {
            layers = layers.max(p.end);
        }
        (layers, ubatches)
    }

    /// Validates structural invariants: every referenced task exists, every
    /// graph task of every replica is scheduled exactly once, and AllReduce
    /// items appear the same number of times on every GPU.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let ntasks = self.graph.tasks().len();
        let mut seen: HashMap<(usize, TaskId), usize> = HashMap::new();
        let mut reduce_counts: Vec<HashMap<usize, usize>> = vec![HashMap::new(); self.queues.len()];
        for (g, q) in self.queues.iter().enumerate() {
            for item in q {
                match *item {
                    WorkItem::Task { replica, task } => {
                        if replica >= self.replicas {
                            return Err(format!("gpu{g}: replica {replica} out of range"));
                        }
                        if task >= ntasks {
                            return Err(format!("gpu{g}: task {task} out of range"));
                        }
                        *seen.entry((replica, task)).or_insert(0) += 1;
                    }
                    WorkItem::AllReduce { pack } => {
                        *reduce_counts[g].entry(pack).or_insert(0) += 1;
                    }
                }
            }
        }
        for r in 0..self.replicas {
            for t in 0..ntasks {
                match seen.get(&(r, t)) {
                    Some(1) => {}
                    Some(k) => return Err(format!("task {t} of replica {r} scheduled {k}×")),
                    None => return Err(format!("task {t} of replica {r} never scheduled")),
                }
            }
        }
        if let Some(first) = reduce_counts.first() {
            for (g, counts) in reduce_counts.iter().enumerate() {
                if counts != first {
                    return Err(format!("gpu{g}: AllReduce set differs from gpu0"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_models::TransformerConfig;
    use harmony_taskgraph::GraphConfig;

    fn tiny_plan(queues: Vec<Vec<WorkItem>>, replicas: usize) -> ExecutionPlan {
        let model = TransformerConfig::tiny().build();
        let graph = TaskGraph::build(
            &model,
            GraphConfig {
                microbatches: 1,
                pack_size: 100, // single pack → few tasks
                ..GraphConfig::default()
            },
        )
        .unwrap();
        ExecutionPlan {
            name: "t".to_string(),
            graph,
            replicas,
            queues,
            scheme: SchemeConfig::baseline("b"),
            samples_per_iteration: 1,
            demand_bytes: vec![0],
        }
    }

    #[test]
    fn validate_accepts_complete_single_gpu_plan() {
        // Single pack, 1 microbatch → tasks: F, Loss, B, U = ids 0..4.
        let plan = tiny_plan(
            vec![(0..4)
                .map(|t| WorkItem::Task {
                    replica: 0,
                    task: t,
                })
                .collect()],
            1,
        );
        assert_eq!(plan.total_items(), 4);
        plan.validate().unwrap();
    }

    #[test]
    fn validate_rejects_missing_and_duplicate_tasks() {
        let missing = tiny_plan(
            vec![vec![WorkItem::Task {
                replica: 0,
                task: 0,
            }]],
            1,
        );
        assert!(missing.validate().is_err());
        let mut items: Vec<WorkItem> = (0..4)
            .map(|t| WorkItem::Task {
                replica: 0,
                task: t,
            })
            .collect();
        items.push(WorkItem::Task {
            replica: 0,
            task: 0,
        });
        let dup = tiny_plan(vec![items], 1);
        assert!(dup.validate().is_err());
    }

    #[test]
    fn validate_rejects_mismatched_collectives() {
        let q0: Vec<WorkItem> = (0..4)
            .map(|t| WorkItem::Task {
                replica: 0,
                task: t,
            })
            .chain([WorkItem::AllReduce { pack: 0 }])
            .collect();
        let q1: Vec<WorkItem> = (0..4)
            .map(|t| WorkItem::Task {
                replica: 1,
                task: t,
            })
            .collect();
        let plan = tiny_plan(vec![q0, q1], 2);
        assert!(plan.validate().is_err());
    }

    #[test]
    fn validate_rejects_out_of_range_refs() {
        let plan = tiny_plan(
            vec![vec![WorkItem::Task {
                replica: 5,
                task: 0,
            }]],
            1,
        );
        assert!(plan.validate().is_err());
        let plan = tiny_plan(
            vec![vec![WorkItem::Task {
                replica: 0,
                task: 999,
            }]],
            1,
        );
        assert!(plan.validate().is_err());
    }
}
