//! The frozen dense-reference executor: byte-for-byte the executor as
//! it stood before the slab/SoA constant-factor rewrite of `exec.rs`,
//! with `HashMap`/`BTreeMap` keyed lookups on the per-event path and the
//! re-advance-every-GPU dense loop hardwired on.
//!
//! `use_dense_advance`(crate::SimExecutor::use_dense_advance)
//! delegates an entire run to this module, so the execdiff differential
//! (byte-identical trace JSON + run summary, matched errors) proves the
//! rewritten hot path against yesterday's executor, and the exec-smoke
//! speedup gate measures the rewrite's constant-factor win against real
//! code rather than a synthetic strawman. Keep this file frozen: fixes
//! belong in `exec.rs`, and any intentional semantic change must land in
//! both files in the same commit (the differential will catch a lone
//! one).
#![allow(dead_code)]

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use harmony_memory::{
    EvictionPolicy, Lru, MemError, MemObserver, MemoryManager, NextUseAware, Residency, TensorId,
};
use harmony_models::ModelSpec;
use harmony_simulator::{Completion, Simulator, TransferId};
use harmony_taskgraph::{TaskId, TensorRef};
use harmony_topology::{ChannelId, Endpoint, Topology};
use harmony_trace::{
    summary::{ResilienceMode, ResilienceOutcome, RunSummary},
    SpanKind, SymbolId, Trace,
};

use crate::config::PolicyKind;
use crate::exec::{ExecCounters, ExecError};
use crate::obs::{ExecContext, ExecEvent, ExecObserver, Fault, TimedFault};
use crate::plan::{ExecutionPlan, WorkItem};

/// Logical tensor key: (iteration, replica, reference).
///
/// Persistent state (weights, gradient buffers, optimizer state) uses
/// iteration 0 regardless of when it is touched — one instance lives across
/// the whole run. Transients (activations, stashes, act-grads, inputs) are
/// distinct per iteration so consecutive iterations can overlap across GPUs
/// without aliasing.
type Key = (u32, usize, TensorRef);

/// Builds the key for `rf` touched during iteration `iter`.
fn key_of(iter: u32, replica: usize, rf: TensorRef) -> Key {
    let persistent = matches!(
        rf,
        TensorRef::Weight { .. } | TensorRef::Grad { .. } | TensorRef::OptState { .. }
    );
    (if persistent { 0 } else { iter }, replica, rf)
}

#[derive(Debug, Clone, Copy)]
enum Target {
    /// Make an existing tensor resident and pin it.
    Input(Key),
    /// Allocate a fresh output tensor on this GPU and pin it.
    Alloc(Key),
}

#[derive(Debug)]
enum InFlight {
    /// Ready to process the next fetch target (or start compute).
    Idle,
    /// Waiting for eviction writebacks to free room.
    Evicting(HashSet<TransferId>),
    /// Waiting for the current target's swap-in / p2p move.
    Moving,
    /// Waiting for a needed tensor to finish leaving a peer GPU (host
    /// bounce path when p2p is disabled).
    WaitDemote,
    /// Kernel submitted.
    Computing,
    /// Arrived at an AllReduce barrier.
    Collective,
}

#[derive(Debug)]
struct Step {
    /// Globally unique id — transfers route completions by it, surviving
    /// promotion from the prefetch slot to the current slot.
    id: u64,
    seq: u64,
    iter: u32,
    item: WorkItem,
    targets: VecDeque<Target>,
    targets_built: bool,
    pinned: Vec<TensorId>,
    inflight: InFlight,
}

#[derive(Debug)]
struct GpuState {
    queue: VecDeque<(u64, u32, WorkItem)>,
    step: Option<Step>,
    /// Double-buffered next step, fetched during the current compute.
    prefetch: Option<Step>,
}

#[derive(Debug, Clone)]
struct PendingTransfer {
    purpose: Purpose,
    start: f64,
    lane: usize,
    kind: SpanKind,
    label: SymbolId,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Purpose {
    /// Writeback of an eviction victim for step `step` on `gpu`.
    Eviction {
        gpu: usize,
        step: u64,
        tensor: TensorId,
    },
    /// The needed tensor itself leaving a peer device (host bounce).
    Demote {
        gpu: usize,
        step: u64,
        tensor: TensorId,
    },
    /// Swap-in or p2p move completing a fetch of step `step` on `gpu`.
    Move {
        gpu: usize,
        step: u64,
        tensor: TensorId,
    },
    /// One ring hop of an AllReduce.
    Collective { iter: u32, pack: usize },
    /// End-of-iteration writeback of dirty persistent state.
    Flush { tensor: TensorId },
}

#[derive(Debug, Default)]
struct CollectiveState {
    arrived: HashSet<usize>,
    outstanding: HashSet<TransferId>,
}

#[derive(Debug, Clone)]
struct ComputeRec {
    start: f64,
    label: SymbolId,
}

/// Which step slot of a GPU is being driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Current,
    Prefetch,
}

/// Timer tags at or above this bias belong to resilience retry timers;
/// below it they are injected-fault timers (tag = index into `faults`).
/// Far below the simulator's 2^62 tag ceiling, far above any fault count.
const RETRY_TAG_BIAS: u64 = 1 << 48;

/// Base delay of the seeded exponential backoff (virtual seconds). Small
/// relative to typical transfer times so the first retry lands promptly.
const RETRY_BASE_SECS: f64 = 2e-5;

/// Spill retries before escalating to a UVM-style capacity overcommit.
const MAX_SPILL_ATTEMPTS: u32 = 3;

/// A link whose bandwidth fault factor drops below this threshold is
/// treated as degraded: in-flight p2p moves over it are cancelled and new
/// fetches take the host-bounce path until it recovers.
const DEGRADED_FACTOR: f64 = 0.5;

/// Pressure-spill state of a GPU's *current* step: a post-fault capacity
/// shortfall being handled by evict-and-retry instead of aborting.
#[derive(Debug, Clone, Copy)]
struct SpillState {
    /// Step that spilled; stale timers for older steps are ignored.
    step_id: u64,
    /// Retry timers fired so far (resets after an overcommit escalation).
    attempts: u32,
    /// A retry timer is scheduled and has not fired yet.
    timer_pending: bool,
    /// Bytes the most recent failed attempt needed free.
    needed: u64,
}

/// What a fired resilience retry timer should do.
#[derive(Debug, Clone, Copy)]
enum RetryKind {
    /// Re-attempt the spilled fetch of step `step` on `gpu`.
    Spill { gpu: usize, step: u64 },
    /// Flip step `step` on `gpu` from Moving back to Idle so the cancelled
    /// p2p fetch is re-attempted (host bounce while the route is degraded).
    Reroute { gpu: usize, step: u64 },
}

/// SplitMix64 step for backoff jitter — self-contained so the scheduler
/// does not grow an RNG dependency.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Executes one iteration of an [`ExecutionPlan`] on a topology. See
/// module docs.
pub struct ReferenceExecutor<'a> {
    topo: &'a Topology,
    model: &'a ModelSpec,
    plan: &'a ExecutionPlan,
    sim: Simulator,
    mm: MemoryManager,
    policy: Box<dyn EvictionPolicy>,
    ids: HashMap<Key, TensorId>,
    gpus: Vec<GpuState>,
    done: HashSet<(u32, usize, TaskId)>,
    transfers: HashMap<TransferId, PendingTransfer>,
    computes: HashMap<u64, ComputeRec>,
    next_compute_tag: u64,
    next_step_id: u64,
    collectives: HashMap<(u32, usize), CollectiveState>,
    trace: Trace,
    next_use: HashMap<Key, VecDeque<u64>>,
    iterations: u32,
    observers: Vec<Box<dyn ExecObserver>>,
    faults: Vec<TimedFault>,
    /// Per-GPU compute-rate multiplier (1.0 nominal), set by jitter faults.
    compute_rate: Vec<f64>,
    /// Fail with [`ExecError::Stuck`] after this many simulator events.
    event_budget: Option<u64>,
    events_processed: u64,
    /// Interned trace label per tensor, assigned at registration/alloc.
    labels: HashMap<TensorId, SymbolId>,
    /// Interned compute labels, keyed by (replica, task).
    task_syms: HashMap<(usize, TaskId), SymbolId>,
    /// Dense-reference mode: re-advance every GPU after every event.
    dense: bool,
    /// GPU currently being advanced inside a pass (None outside passes).
    advancing: Option<usize>,
    /// Remaining GPUs of the pass in flight (ascending order).
    pass: BTreeSet<usize>,
    /// Wakes deferred to the next event's pass.
    pending_wakes: BTreeSet<usize>,
    /// GPUs blocked on a task dependency: `(iter, replica, task)` → waiters.
    dep_waiters: HashMap<(u32, usize, TaskId), BTreeSet<usize>>,
    /// GPUs whose fetch stalled on a tensor (in flight / pinned elsewhere).
    tensor_waiters: HashMap<TensorId, BTreeSet<usize>>,
    /// GPUs in the prefetch cancel-retry loop: advanced every pass (the
    /// dense cadence) because each retry re-touches tensors.
    poll: BTreeSet<usize>,
    /// Bumped at every executor state change; advance snapshots it to
    /// classify wakes as productive or spurious.
    mutations: u64,
    counters: ExecCounters,
    /// Graceful-degradation layer (DESIGN §10): when armed, post-fault
    /// capacity shortfalls spill-and-retry instead of aborting, and p2p
    /// fetches reroute off degraded links. Off by default.
    resilience: bool,
    /// Seed for the deterministic backoff jitter.
    resilience_seed: u64,
    /// Set once the first injected fault applies — the gate that keeps
    /// the resilience layer byte-invisible on clean (and pre-fault) paths.
    fault_applied: bool,
    /// Channels currently degraded below [`DEGRADED_FACTOR`].
    degraded_channels: BTreeSet<ChannelId>,
    /// Per-GPU pressure-spill state (current step only).
    spills: Vec<Option<SpillState>>,
    /// Metadata of scheduled retry timers, indexed by tag − RETRY_TAG_BIAS.
    retry_meta: Vec<RetryKind>,
    /// Reroutes per tensor, so backoff grows across repeated link faults.
    reroute_attempts: HashMap<TensorId, u32>,
    /// Counters reported as the summary's [`ResilienceOutcome`].
    res_outcome: ResilienceOutcome,
}

impl<'a> ReferenceExecutor<'a> {
    /// Prepares an executor: registers all persistent tensors (weights,
    /// gradient buffers, optimizer state per replica; inputs per
    /// microbatch) in host memory, as a framework would before training.
    pub fn new(
        topo: &'a Topology,
        model: &'a ModelSpec,
        plan: &'a ExecutionPlan,
    ) -> Result<Self, ExecError> {
        Self::with_iterations(topo, model, plan, 1)
    }

    /// Like [`ReferenceExecutor::new`] but replays the plan `iterations` times
    /// back-to-back (fresh inputs and transients each iteration, shared
    /// persistent state). Consecutive iterations pipeline across GPUs,
    /// so the summary's totals divided by `iterations` approach the
    /// steady-state per-iteration figures without cold-start edges.
    pub fn with_iterations(
        topo: &'a Topology,
        model: &'a ModelSpec,
        plan: &'a ExecutionPlan,
        iterations: u32,
    ) -> Result<Self, ExecError> {
        if iterations == 0 {
            return Err(ExecError::Plan("iterations must be positive".to_string()));
        }
        plan.validate().map_err(ExecError::Plan)?;
        if plan.queues.len() > topo.num_gpus() {
            return Err(ExecError::Plan(format!(
                "plan uses {} GPUs, topology has {}",
                plan.queues.len(),
                topo.num_gpus()
            )));
        }
        let sim = Simulator::new(topo);
        let mut mm = MemoryManager::new(
            (0..topo.num_gpus())
                .map(|g| topo.gpu(g).map(|s| s.mem_bytes))
                .collect::<Result<Vec<_>, _>>()?,
        );
        let cfg = plan.graph.config();
        let mut ids = HashMap::new();
        let mut trace = Trace::new(plan.name.clone());
        let mut labels = HashMap::new();
        let mut counters = ExecCounters::default();
        // Persistent per-replica state. Labels are interned once here —
        // the event loop only ever stamps spans with the symbol.
        let mut register = |mm: &mut MemoryManager, ids: &mut HashMap<Key, TensorId>, key: Key| {
            let rf = key.2;
            let bytes = rf.bytes(model, cfg.ubatch_size, cfg.opt_slots);
            let name = name_of(key.1, rf);
            let sym = trace.intern(&name);
            counters.label_interns += 1;
            let id = mm.register_on_host(name, bytes, rf.class());
            labels.insert(id, sym);
            ids.insert(key, id);
        };
        for r in 0..plan.replicas {
            for l in 0..model.layers.len() {
                for rf in [
                    TensorRef::Weight { layer: l },
                    TensorRef::Grad { layer: l },
                    TensorRef::OptState { layer: l },
                ] {
                    register(&mut mm, &mut ids, (0, r, rf));
                }
            }
            for u in 0..cfg.microbatches {
                for it in 0..iterations {
                    register(&mut mm, &mut ids, (it, r, TensorRef::Input { ubatch: u }));
                }
            }
        }
        let policy: Box<dyn EvictionPolicy> = match plan.scheme.policy {
            PolicyKind::Lru => Box::new(Lru),
            PolicyKind::NextUseAware => Box::new(NextUseAware),
        };
        let gpus = plan
            .queues
            .iter()
            .map(|q| GpuState {
                queue: (0..iterations)
                    .flat_map(|it| {
                        q.iter().enumerate().map(move |(i, item)| {
                            ((it as u64) * q.len() as u64 + i as u64, it, *item)
                        })
                    })
                    .collect(),
                step: None,
                prefetch: None,
            })
            .collect();
        // Future-use table for next-use-aware eviction.
        let mut next_use: HashMap<Key, VecDeque<u64>> = HashMap::new();
        for q in &plan.queues {
            for it in 0..iterations {
                for (i, item) in q.iter().enumerate() {
                    let seq = (it as u64) * q.len() as u64 + i as u64;
                    for key in item_keys(plan, it, *item) {
                        next_use.entry(key).or_default().push_back(seq);
                    }
                }
            }
        }
        let num_gpus = topo.num_gpus();
        Ok(ReferenceExecutor {
            topo,
            model,
            plan,
            sim,
            mm,
            policy,
            ids,
            gpus,
            done: HashSet::new(),
            transfers: HashMap::new(),
            computes: HashMap::new(),
            next_compute_tag: 0,
            next_step_id: 0,
            collectives: HashMap::new(),
            trace,
            next_use,
            iterations,
            observers: Vec::new(),
            faults: Vec::new(),
            compute_rate: vec![1.0; num_gpus],
            event_budget: None,
            events_processed: 0,
            labels,
            task_syms: HashMap::new(),
            dense: true,
            advancing: None,
            pass: BTreeSet::new(),
            pending_wakes: BTreeSet::new(),
            dep_waiters: HashMap::new(),
            tensor_waiters: HashMap::new(),
            poll: BTreeSet::new(),
            mutations: 0,
            counters,
            resilience: false,
            resilience_seed: 0,
            fault_applied: false,
            degraded_channels: BTreeSet::new(),
            spills: vec![None; num_gpus],
            retry_meta: Vec::new(),
            reroute_attempts: HashMap::new(),
            res_outcome: ResilienceOutcome::default(),
        })
    }

    /// Arms the resilience layer (DESIGN §10): once any injected fault has
    /// applied, capacity shortfalls on the current step enter pressure-spill
    /// mode (park + seeded-backoff retry, escalating to a UVM-style
    /// overcommit) and p2p fetches over degraded links are cancelled and
    /// rerouted through host memory — instead of aborting the run. `seed`
    /// drives the backoff jitter, so a fixed seed gives a bit-identical
    /// degraded trace. Clean runs are unaffected: every resilience branch
    /// is additionally gated on a fault having fired.
    pub fn enable_resilience(&mut self, seed: u64) {
        self.resilience = true;
        self.resilience_seed = seed;
    }

    /// Attaches an executor observer (see [`crate::obs`]). Runs with no
    /// observers pay only an `is_empty` branch per event.
    pub fn attach_observer(&mut self, observer: Box<dyn ExecObserver>) {
        self.observers.push(observer);
    }

    /// Attaches a memory observer to the executor's internal
    /// [`MemoryManager`] (which the executor owns and builds itself).
    pub fn attach_mem_observer(&mut self, observer: Box<dyn MemObserver>) {
        self.mm.attach_observer(observer);
    }

    /// Schedules deterministic faults: each fires as a simulator timer at
    /// its virtual time and perturbs the run when handled. Repeated calls
    /// append. Fault factors must be positive and finite.
    pub fn inject_faults(&mut self, faults: &[TimedFault]) -> Result<(), ExecError> {
        for &tf in faults {
            let factor = match tf.fault {
                Fault::LinkBandwidth { factor, .. }
                | Fault::CapacitySqueeze { factor, .. }
                | Fault::ComputeJitter { factor, .. } => factor,
            };
            if !(factor.is_finite() && factor > 0.0) {
                return Err(ExecError::Plan(format!(
                    "fault factor must be positive and finite, got {factor}"
                )));
            }
            let tag = self.faults.len() as u64;
            self.faults.push(tf);
            self.sim.set_timer(tf.at, tag, 0)?;
        }
        Ok(())
    }

    /// Aborts the run with [`ExecError::Stuck`] once more than `budget`
    /// simulator events have been processed — a watchdog for termination
    /// tests (a deadlock that the idle-queue check cannot see, e.g. a
    /// livelock of retried fetches, cannot run away unnoticed).
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = Some(budget);
    }

    /// Read access to the executor's memory manager (for tests/oracles).
    pub fn memory(&self) -> &MemoryManager {
        &self.mm
    }

    /// Read access to the executor's simulator (for tests/oracles).
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Notifies observers of `event`; no-op (and no allocation) when none
    /// are attached.
    fn emit(&mut self, event: ExecEvent) {
        self.emit_with(|| event);
    }

    /// Like [`Self::emit`], but the event is only *constructed* when an
    /// observer is attached — callers with allocating payloads (route
    /// vectors) pay nothing on unobserved runs.
    fn emit_with(&mut self, make: impl FnOnce() -> ExecEvent) {
        if self.observers.is_empty() {
            return;
        }
        let event = make();
        let mut obs = std::mem::take(&mut self.observers);
        {
            let ctx = ExecContext {
                plan: self.plan,
                mm: &self.mm,
                sim: &self.sim,
                done: &self.done,
            };
            for o in &mut obs {
                o.on_event(&ctx, &event);
            }
        }
        self.observers = obs;
    }

    /// Starts a transfer on the simulator, emitting
    /// [`ExecEvent::TransferIssued`] when observers are attached (the
    /// route vector is only cloned in that case — `emit_with` guards).
    fn issue_transfer(
        &mut self,
        route: &[ChannelId],
        bytes: u64,
        lane: usize,
    ) -> Result<TransferId, ExecError> {
        let xfer = self.sim.start_transfer(route, bytes, 0, lane as u32)?;
        self.mutations += 1;
        self.emit_with(|| ExecEvent::TransferIssued {
            route: route.to_vec(),
            bytes,
        });
        Ok(xfer)
    }

    /// The interned label of a tensor (assigned at registration/alloc).
    fn tensor_sym(&self, id: TensorId) -> Result<SymbolId, ExecError> {
        self.labels
            .get(&id)
            .copied()
            .ok_or_else(|| ExecError::Plan(format!("tensor {id} has no label")))
    }

    /// Marks `g` as unblockable. During a pass, GPUs above the one
    /// currently advancing join the same pass (dense visibility order);
    /// everything else waits for the next event's pass.
    fn wake(&mut self, g: usize) {
        if self.dense {
            return;
        }
        match self.advancing {
            Some(cur) if g > cur => {
                self.pass.insert(g);
            }
            _ => {
                self.pending_wakes.insert(g);
            }
        }
    }

    /// Wakes every GPU (collective completion, fault application).
    fn wake_all(&mut self) {
        for g in 0..self.gpus.len() {
            self.wake(g);
        }
    }

    /// Registers `g` as blocked on completion of `(iter, replica, task)`.
    fn register_dep_waiter(&mut self, g: usize, iter: u32, item: WorkItem) {
        if self.dense {
            return;
        }
        let WorkItem::Task { replica, task } = item else {
            return;
        };
        // The first unsatisfied dependency is enough: its completion
        // re-checks readiness and re-registers on the next one if needed.
        let missing = self
            .plan
            .graph
            .task(task)
            .deps
            .iter()
            .find(|d| !self.done.contains(&(iter, replica, **d)));
        if let Some(&d) = missing {
            self.dep_waiters
                .entry((iter, replica, d))
                .or_default()
                .insert(g);
        }
    }

    /// Wakes GPUs blocked on task `(iter, replica, task)` completing.
    fn wake_dep_waiters(&mut self, iter: u32, replica: usize, task: TaskId) {
        if self.dense || self.dep_waiters.is_empty() {
            return;
        }
        if let Some(ws) = self.dep_waiters.remove(&(iter, replica, task)) {
            for g in ws {
                self.wake(g);
            }
        }
    }

    /// Registers `g` as stalled on tensor `id` (moving / pinned elsewhere).
    fn register_tensor_waiter(&mut self, g: usize, id: TensorId) {
        if self.dense {
            return;
        }
        self.tensor_waiters.entry(id).or_default().insert(g);
    }

    /// Wakes GPUs stalled on tensor `id` (its move settled, or it was
    /// unpinned or freed).
    fn wake_tensor_waiters(&mut self, id: TensorId) {
        if self.dense || self.tensor_waiters.is_empty() {
            return;
        }
        if let Some(ws) = self.tensor_waiters.remove(&id) {
            for g in ws {
                self.wake(g);
            }
        }
    }

    /// Applies an injected fault when its timer fires.
    fn apply_fault(&mut self, fault: Fault) -> Result<(), ExecError> {
        self.fault_applied = true;
        match fault {
            Fault::LinkBandwidth { channel, factor } => {
                let nominal = self
                    .topo
                    .channels()
                    .get(channel)
                    .ok_or_else(|| ExecError::Plan(format!("fault on unknown channel {channel}")))?
                    .bandwidth;
                self.sim.set_channel_bandwidth(channel, nominal * factor)?;
                if self.resilience {
                    if factor < DEGRADED_FACTOR {
                        self.degraded_channels.insert(channel);
                        self.reroute_inflight_p2p(channel)?;
                    } else {
                        // A later fault can restore the link.
                        self.degraded_channels.remove(&channel);
                    }
                }
            }
            Fault::CapacitySqueeze { gpu, factor } => {
                let nominal = self.topo.gpu(gpu)?.mem_bytes;
                let target = (nominal as f64 * factor) as u64;
                // Clamped internally so in-use bytes still fit.
                self.mm.set_capacity(gpu, target)?;
            }
            Fault::ComputeJitter { gpu, factor } => {
                if gpu >= self.compute_rate.len() {
                    return Err(ExecError::Plan(format!("fault on unknown gpu {gpu}")));
                }
                self.compute_rate[gpu] = factor;
            }
        }
        self.emit(ExecEvent::FaultApplied { fault });
        Ok(())
    }

    /// Deterministic exponential backoff with seeded jitter: delay for
    /// retry number `attempts`, salted so concurrent retry streams (per
    /// GPU, per tensor) decorrelate without sharing mutable RNG state.
    fn retry_backoff(&self, salt: u64, attempts: u32) -> f64 {
        let base = RETRY_BASE_SECS * (1u64 << attempts.min(16)) as f64;
        let bits = splitmix64(
            self.resilience_seed ^ salt.wrapping_mul(0x9E37_79B9) ^ ((attempts as u64 + 1) << 32),
        );
        // 53 uniform bits → jitter in [1.0, 2.0) × base.
        let jitter = 1.0 + (bits >> 11) as f64 / (1u64 << 53) as f64;
        base * jitter
    }

    /// Schedules a resilience retry timer `delay` virtual seconds from
    /// now. The tag encodes an index into `retry_meta`.
    fn schedule_retry(&mut self, kind: RetryKind, delay: f64) -> Result<(), ExecError> {
        let tag = RETRY_TAG_BIAS + self.retry_meta.len() as u64;
        let lane = match kind {
            RetryKind::Spill { gpu, .. } | RetryKind::Reroute { gpu, .. } => gpu as u32,
        };
        self.retry_meta.push(kind);
        let at = self.sim.now() + delay;
        self.sim.set_timer(at, tag, lane)?;
        Ok(())
    }

    /// Whether the p2p route `src → dst` crosses a degraded channel.
    fn route_degraded(&self, src: usize, dst: usize) -> Result<bool, ExecError> {
        if self.degraded_channels.is_empty() {
            return Ok(false);
        }
        let route = self.topo.route(Endpoint::Gpu(src), Endpoint::Gpu(dst))?;
        Ok(route.iter().any(|c| self.degraded_channels.contains(c)))
    }

    /// Routes a memory failure from a fetch/alloc attempt of step
    /// `step_id` on `g` into pressure-spill mode. Only
    /// `InsufficientMemory` on the *current* slot of a fault-degraded,
    /// resilience-armed run is absorbed (the step parks and a backoff
    /// timer re-drives it); everything else — including all failures on
    /// clean runs and before any fault fires — propagates unchanged, so
    /// clean behaviour stays byte-identical with the layer on or off.
    /// Prefetch-slot shortfalls keep their existing fallback
    /// (cancel-and-retry serially in `try_prefetch`).
    fn spill_guard(
        &mut self,
        g: usize,
        slot: Slot,
        step_id: u64,
        e: MemError,
    ) -> Result<bool, ExecError> {
        let needed = match (&e, slot) {
            (MemError::InsufficientMemory { needed, .. }, Slot::Current)
                if self.resilience && self.fault_applied =>
            {
                *needed
            }
            _ => return Err(e.into()),
        };
        // Give back the double-buffer first: prefetch pins are the
        // cheapest memory to reclaim, and cancellation is only legal from
        // the synchronous Idle state (no transfers in flight).
        if matches!(
            self.gpus[g].prefetch.as_ref().map(|s| &s.inflight),
            Some(InFlight::Idle)
        ) {
            self.cancel_prefetch(g)?;
        }
        match self.spills[g] {
            Some(ref mut sp) if sp.step_id == step_id => {
                sp.needed = needed;
                if !sp.timer_pending {
                    // First failed attempt after a fired retry: re-arm.
                    sp.timer_pending = true;
                    let attempts = sp.attempts;
                    let delay = self.retry_backoff(g as u64, attempts);
                    self.schedule_retry(
                        RetryKind::Spill {
                            gpu: g,
                            step: step_id,
                        },
                        delay,
                    )?;
                }
            }
            _ => {
                // Entering spill mode for this step (replacing any stale
                // record of an earlier step on this GPU).
                self.spills[g] = Some(SpillState {
                    step_id,
                    attempts: 0,
                    timer_pending: true,
                    needed,
                });
                self.res_outcome.spill_events += 1;
                self.mutations += 1;
                self.emit(ExecEvent::PressureSpill { gpu: g, needed });
                let delay = self.retry_backoff(g as u64, 0);
                self.schedule_retry(
                    RetryKind::Spill {
                        gpu: g,
                        step: step_id,
                    },
                    delay,
                )?;
            }
        }
        // Every retry re-touches tensors, so it must run each pass — the
        // dense cadence (same reasoning as the prefetch cancel loop).
        self.poll.insert(g);
        Ok(false)
    }

    /// A spill retry timer fired: count the attempt, escalate to a
    /// UVM-style capacity overcommit once `MAX_SPILL_ATTEMPTS` backoffs
    /// have not freed enough room (eviction writebacks may be structurally
    /// unable to cover the shortfall after a harsh squeeze — overcommit
    /// models paging the excess and guarantees forward progress), and wake
    /// the GPU to re-attempt.
    fn fire_spill_retry(&mut self, gpu: usize, step: u64) -> Result<(), ExecError> {
        let Some(mut sp) = self.spills[gpu] else {
            return Ok(());
        };
        if sp.step_id != step {
            return Ok(()); // stale timer for an earlier spill
        }
        let live = self.gpus[gpu].step.as_ref().is_some_and(|s| s.id == step);
        if !live {
            // The step completed between scheduling and firing: spill over.
            self.spills[gpu] = None;
            self.mutations += 1;
            return Ok(());
        }
        sp.timer_pending = false;
        sp.attempts += 1;
        self.res_outcome.retries += 1;
        if sp.attempts >= MAX_SPILL_ATTEMPTS {
            let used = self.mm.used(gpu)?;
            self.mm.set_capacity(gpu, used.saturating_add(sp.needed))?;
            self.res_outcome.overcommits += 1;
            sp.attempts = 0;
        }
        self.spills[gpu] = Some(sp);
        self.mutations += 1;
        self.poll.insert(gpu);
        self.wake(gpu);
        Ok(())
    }

    /// A reroute retry timer fired: flip the parked step back to Idle so
    /// the fetch is re-attempted (host bounce while the route stays
    /// degraded, p2p again once it recovers).
    fn fire_reroute_retry(&mut self, gpu: usize, step: u64) -> Result<(), ExecError> {
        self.res_outcome.retries += 1;
        if let Some(slot) = self.slot_of(gpu, step) {
            let s = self.step_mut(gpu, slot).expect("slot_of located this slot");
            if matches!(s.inflight, InFlight::Moving) {
                s.inflight = InFlight::Idle;
                self.mutations += 1;
            }
        }
        self.wake(gpu);
        Ok(())
    }

    /// Dispatches a fired resilience retry timer by its tag.
    fn handle_retry_timer(&mut self, tag: u64) -> Result<(), ExecError> {
        let idx = (tag - RETRY_TAG_BIAS) as usize;
        let kind = *self
            .retry_meta
            .get(idx)
            .ok_or_else(|| ExecError::Plan(format!("retry timer {idx} has no metadata")))?;
        match kind {
            RetryKind::Spill { gpu, step } => self.fire_spill_retry(gpu, step),
            RetryKind::Reroute { gpu, step } => self.fire_reroute_retry(gpu, step),
        }
    }

    /// Cancels every in-flight p2p fetch move routed over the degraded
    /// `channel` and schedules a backoff retry for each parked step. The
    /// tensor reverts to its source device, so the retried fetch sees it
    /// there and (with the route degraded) takes the host-bounce path.
    /// Collective ring hops are barriers and are never cancelled — they
    /// just run slowly on the degraded link.
    fn reroute_inflight_p2p(&mut self, channel: ChannelId) -> Result<(), ExecError> {
        let mut victims: Vec<(TransferId, usize, u64, TensorId)> = Vec::new();
        for (&xfer, pt) in &self.transfers {
            if pt.kind != SpanKind::P2p {
                continue;
            }
            let Purpose::Move { gpu, step, tensor } = pt.purpose else {
                continue;
            };
            let Residency::MovingToDevice {
                dst,
                src: Some(src),
            } = self.mm.info(tensor)?.residency
            else {
                continue;
            };
            if self
                .topo
                .route(Endpoint::Gpu(src), Endpoint::Gpu(dst))?
                .contains(&channel)
            {
                victims.push((xfer, gpu, step, tensor));
            }
        }
        // The transfer map iterates in arbitrary order; sort for a
        // deterministic cancellation (and trace) order.
        victims.sort_unstable();
        for (xfer, gpu, step, tensor) in victims {
            if !self.sim.cancel_transfer(xfer)? {
                continue; // completion already delivered
            }
            let pt = self
                .transfers
                .remove(&xfer)
                .expect("victim was collected from this map");
            // The aborted attempt occupied the lane until now: record the
            // partial span so the trace shows the cancelled hop.
            self.trace.record_sym(
                pt.start,
                self.sim.now(),
                Some(pt.lane),
                pt.kind,
                pt.label,
                self.sim.current_wave(),
            );
            self.mm.cancel_move_to_device(tensor)?;
            self.mutations += 1;
            self.res_outcome.rerouted_transfers += 1;
            self.emit(ExecEvent::TransferRerouted { gpu, channel });
            let attempts = *self
                .reroute_attempts
                .entry(tensor)
                .and_modify(|a| *a += 1)
                .or_insert(0);
            let delay = self.retry_backoff(tensor ^ 0x5EED, attempts);
            self.schedule_retry(RetryKind::Reroute { gpu, step }, delay)?;
            // The tensor is back on its source: fetches stalled on the
            // in-flight move can proceed.
            self.wake_tensor_waiters(tensor);
        }
        Ok(())
    }

    /// Pulls the next simulator event, enforcing the event budget.
    fn next_event(&mut self) -> Result<Option<Completion>, ExecError> {
        match self.sim.next() {
            Some((_, completion)) => {
                self.events_processed += 1;
                if let Some(budget) = self.event_budget {
                    if self.events_processed > budget {
                        return Err(ExecError::Stuck(format!(
                            "event budget {budget} exceeded at t={:.6}s",
                            self.sim.now()
                        )));
                    }
                }
                Ok(Some(completion))
            }
            None => Ok(None),
        }
    }

    /// Advances GPU `g` once, maintaining the structural counters and the
    /// in-pass wake ordering (`advancing` routes same-pass wakes).
    fn advance_counted(&mut self, g: usize) -> Result<(), ExecError> {
        self.advancing = Some(g);
        self.counters.advance_calls += 1;
        let before = self.mutations;
        let res = self.advance(g);
        self.advancing = None;
        res?;
        if self.mutations != before {
            self.counters.wake_set_hits += 1;
        } else {
            self.counters.spurious_wakes += 1;
        }
        Ok(())
    }

    /// One wake-set pass: advances the GPUs woken by the last event (plus
    /// the poll set) in ascending order. Wakes generated during the pass
    /// for a GPU above the one currently advancing join the same pass —
    /// exactly the dense pass's visibility order.
    fn run_pass(&mut self) -> Result<(), ExecError> {
        self.pass = std::mem::take(&mut self.pending_wakes);
        for &g in &self.poll {
            self.pass.insert(g);
        }
        while let Some(&g) = self.pass.iter().next() {
            self.pass.remove(&g);
            self.poll.remove(&g);
            self.advance_counted(g)?;
        }
        Ok(())
    }

    /// Runs the plan to completion; returns the run summary and trace.
    pub fn run(self) -> Result<(RunSummary, Trace), ExecError> {
        let (summary, trace, _) = self.run_counted()?;
        Ok((summary, trace))
    }

    /// Like [`ReferenceExecutor::run`], but also returns the event-loop's
    /// structural [`ExecCounters`].
    pub fn run_counted(mut self) -> Result<(RunSummary, Trace, ExecCounters), ExecError> {
        let wall_start = std::time::Instant::now();
        // Initial pass: every GPU, in both modes.
        if self.dense {
            for g in 0..self.gpus.len() {
                self.advance_counted(g)?;
            }
        } else {
            self.wake_all();
            self.run_pass()?;
        }
        while let Some(completion) = self.next_event()? {
            self.handle(completion)?;
            if self.dense {
                for g in 0..self.gpus.len() {
                    self.advance_counted(g)?;
                }
            } else {
                self.run_pass()?;
            }
        }
        // Everything must have drained.
        let mut stuck = Vec::new();
        for (g, st) in self.gpus.iter().enumerate() {
            if st.step.is_some() || !st.queue.is_empty() {
                let detail = st
                    .step
                    .as_ref()
                    .map(|s| {
                        let front = s.targets.front().map(|t| {
                            let key = match t {
                                Target::Input(k) | Target::Alloc(k) => *k,
                            };
                            let res = self
                                .ids
                                .get(&key)
                                .and_then(|id| self.mm.info(*id).ok())
                                .map(|i| format!("{:?} pinned={}", i.residency, i.pinned))
                                .unwrap_or_else(|| "unmaterialised".to_string());
                            format!("front target {t:?} [{res}]")
                        });
                        format!(
                            "{:?} inflight={:?} {}",
                            s.item,
                            s.inflight,
                            front.unwrap_or_default()
                        )
                    })
                    .unwrap_or_default();
                stuck.push(format!(
                    "gpu{g}: {} queued, current={detail}",
                    st.queue.len()
                ));
            }
        }
        if !stuck.is_empty() {
            return Err(ExecError::Stuck(stuck.join("; ")));
        }
        self.flush_dirty_state()?;
        self.emit(ExecEvent::RunFinished);
        let n = self.gpus.len();
        let summary = RunSummary {
            name: self.plan.name.clone(),
            sim_secs: self.sim.now(),
            samples: self.plan.samples_per_iteration * self.iterations as u64,
            swap_in_bytes: (0..n)
                .map(|g| {
                    self.mm
                        .stats()
                        .device_total(g, harmony_memory::Direction::In)
                })
                .collect(),
            swap_out_bytes: (0..n)
                .map(|g| {
                    self.mm
                        .stats()
                        .device_total(g, harmony_memory::Direction::Out)
                })
                .collect(),
            p2p_bytes: self.mm.stats().p2p_bytes,
            peak_mem_bytes: (0..n).map(|g| self.mm.peak_used(g).unwrap_or(0)).collect(),
            demand_bytes: self.plan.demand_bytes.clone(),
            swap_by_class: [
                harmony_memory::TensorClass::Weight,
                harmony_memory::TensorClass::Grad,
                harmony_memory::TensorClass::OptState,
                harmony_memory::TensorClass::Activation,
                harmony_memory::TensorClass::Stash,
                harmony_memory::TensorClass::WeightStash,
                harmony_memory::TensorClass::Workspace,
            ]
            .iter()
            .map(|c| (c.to_string(), self.mm.stats().class_total(*c)))
            .collect(),
            channel_busy_secs: self
                .topo
                .channels()
                .iter()
                .map(|c| (c.name.clone(), self.sim.stats().channel_busy_secs[c.id]))
                .collect(),
            events_processed: self.events_processed,
            elapsed_secs: wall_start.elapsed().as_secs_f64(),
            // The frozen reference predates setup timing; differentials
            // zero both sides' wall clocks before comparing.
            setup_secs: 0.0,
            // Populated whenever the layer is armed and faults were
            // injected — even if all zeros (the run absorbed nothing) —
            // and None otherwise, so clean summaries stay byte-identical.
            resilience: if self.resilience && !self.faults.is_empty() {
                let mut out = self.res_outcome.clone();
                out.final_mode = if out.degraded() || !self.degraded_channels.is_empty() {
                    ResilienceMode::Degraded
                } else {
                    ResilienceMode::Normal
                };
                Some(out)
            } else {
                None
            },
            mem_counters: {
                let c = self.mm.stats().counters;
                Some(harmony_trace::summary::MemPlanningCounters {
                    fresh_allocs: c.fresh_allocs,
                    candidate_scans: c.candidate_scans,
                    index_ops: c.index_ops,
                    victim_pops: c.victim_pops,
                })
            },
        };
        Ok((summary, self.trace, self.counters))
    }

    /// Writes back all dirty device-resident persistent state (updated
    /// weights, reset gradient buffers, optimizer state) at the end of the
    /// iteration — checkpoint semantics. Without this, whichever tensors
    /// happen to still be resident when the run ends would be missing from
    /// the measured swap volume, making runs incomparable to the
    /// per-iteration analytical model. Clean tensors flush for free under
    /// either scheme (their host copy is already valid).
    fn flush_dirty_state(&mut self) -> Result<(), ExecError> {
        let dirty: Vec<TensorId> = self
            .ids
            .values()
            .copied()
            .filter(|&id| {
                self.mm
                    .info(id)
                    .map(|t| t.dirty && matches!(t.residency, Residency::OnDevice(_)))
                    .unwrap_or(false)
            })
            .collect();
        let mut sorted = dirty;
        sorted.sort_unstable();
        for id in sorted {
            let label = self.tensor_sym(id)?;
            let (src, bytes) = self.mm.begin_swap_out(id)?;
            let route = self
                .topo
                .route(Endpoint::Gpu(src), Endpoint::Host)?
                .to_vec();
            let xfer = self.issue_transfer(&route, bytes, src)?;
            self.transfers.insert(
                xfer,
                PendingTransfer {
                    purpose: Purpose::Flush { tensor: id },
                    start: self.sim.now(),
                    lane: src,
                    kind: SpanKind::SwapOut,
                    label,
                },
            );
        }
        while let Some(completion) = self.next_event()? {
            self.handle(completion)?;
        }
        Ok(())
    }

    fn deps_ready(&self, iter: u32, item: WorkItem) -> bool {
        match item {
            WorkItem::Task { replica, task } => self
                .plan
                .graph
                .task(task)
                .deps
                .iter()
                .all(|d| self.done.contains(&(iter, replica, *d))),
            WorkItem::AllReduce { .. } => true, // queue order + barrier
        }
    }

    fn build_targets(&self, gpu: usize, iter: u32, item: WorkItem) -> VecDeque<Target> {
        let mut targets = VecDeque::new();
        match item {
            WorkItem::Task { replica, task } => {
                let t = self.plan.graph.task(task);
                let mut seen: Vec<TensorRef> = Vec::new();
                for &rf in &t.reads {
                    if !seen.contains(&rf) {
                        seen.push(rf);
                        targets.push_back(Target::Input(key_of(iter, replica, rf)));
                    }
                }
                for &rf in &t.writes {
                    if !seen.contains(&rf) {
                        seen.push(rf);
                        targets.push_back(Target::Alloc(key_of(iter, replica, rf)));
                    }
                }
            }
            WorkItem::AllReduce { pack } => {
                let replica = gpu;
                for l in self.plan.graph.packs()[pack].clone() {
                    targets.push_back(Target::Input(key_of(
                        iter,
                        replica,
                        TensorRef::Grad { layer: l },
                    )));
                }
            }
        }
        targets
    }

    fn tensor_id(&self, key: Key) -> Result<TensorId, ExecError> {
        self.ids
            .get(&key)
            .copied()
            .ok_or_else(|| ExecError::Plan(format!("tensor {key:?} not materialised")))
    }

    fn update_next_use(&mut self, key: Key, seq: u64) -> Result<(), ExecError> {
        if let Some(q) = self.next_use.get_mut(&key) {
            while q.front().is_some_and(|&f| f <= seq) {
                q.pop_front();
            }
            let hint = q.front().copied();
            let id = self.tensor_id(key)?;
            self.mm.set_next_use(id, hint)?;
        }
        Ok(())
    }

    fn step_mut(&mut self, gpu: usize, slot: Slot) -> Option<&mut Step> {
        match slot {
            Slot::Current => self.gpus[gpu].step.as_mut(),
            Slot::Prefetch => self.gpus[gpu].prefetch.as_mut(),
        }
    }

    fn step_ref(&self, gpu: usize, slot: Slot) -> Option<&Step> {
        match slot {
            Slot::Current => self.gpus[gpu].step.as_ref(),
            Slot::Prefetch => self.gpus[gpu].prefetch.as_ref(),
        }
    }

    /// Locates the slot currently holding step `step_id` on `gpu` (the
    /// step may have been promoted from prefetch to current since the
    /// transfer was issued).
    fn slot_of(&self, gpu: usize, step_id: u64) -> Option<Slot> {
        if self.gpus[gpu]
            .step
            .as_ref()
            .is_some_and(|s| s.id == step_id)
        {
            Some(Slot::Current)
        } else if self.gpus[gpu]
            .prefetch
            .as_ref()
            .is_some_and(|s| s.id == step_id)
        {
            Some(Slot::Prefetch)
        } else {
            None
        }
    }

    /// Issues writebacks (or free drops) for eviction victims. Returns the
    /// set of in-flight transfer ids (empty when every victim was dropped).
    fn issue_evictions(
        &mut self,
        gpu: usize,
        step_id: u64,
        victims: &[TensorId],
    ) -> Result<HashSet<TransferId>, ExecError> {
        let mut set = HashSet::new();
        for &v in victims {
            if self.plan.scheme.clean_drop && self.mm.can_drop(v)? {
                self.mm.drop_to_host(v)?;
                self.mutations += 1;
                continue;
            }
            let label = self.tensor_sym(v)?;
            let (src, bytes) = self.mm.begin_swap_out(v)?;
            let route = self
                .topo
                .route(Endpoint::Gpu(src), Endpoint::Host)?
                .to_vec();
            let xfer = self.issue_transfer(&route, bytes, src)?;
            self.transfers.insert(
                xfer,
                PendingTransfer {
                    purpose: Purpose::Eviction {
                        gpu,
                        step: step_id,
                        tensor: v,
                    },
                    start: self.sim.now(),
                    lane: src,
                    kind: SpanKind::SwapOut,
                    label,
                },
            );
            set.insert(xfer);
        }
        Ok(set)
    }

    /// Drives GPU `g` as far as possible without waiting on events.
    /// Single pass: every exit either blocks on a simulator event (whose
    /// completion re-invokes `advance`) or submits work.
    fn advance(&mut self, g: usize) -> Result<(), ExecError> {
        {
            // Pop a new item if idle.
            if self.gpus[g].step.is_none() {
                // A prefetched step becomes current the moment the slot
                // frees up.
                if let Some(p) = self.gpus[g].prefetch.take() {
                    self.gpus[g].step = Some(p);
                    self.mutations += 1;
                } else {
                    let Some((seq, iter, item)) = self.gpus[g].queue.pop_front() else {
                        return Ok(());
                    };
                    let id = self.next_step_id;
                    self.next_step_id += 1;
                    self.gpus[g].step = Some(Step {
                        id,
                        seq,
                        iter,
                        item,
                        targets: VecDeque::new(),
                        targets_built: false,
                        pinned: Vec::new(),
                        inflight: InFlight::Idle,
                    });
                    self.mutations += 1;
                }
            }
            let step = self.gpus[g]
                .step
                .as_ref()
                .expect("invariant: the branch above populated gpus[g].step or returned");
            if matches!(step.inflight, InFlight::Computing) {
                // Overlap: drive the next item's fetches while computing.
                self.try_prefetch(g)?;
                return Ok(());
            }
            if !matches!(step.inflight, InFlight::Idle) {
                return Ok(()); // waiting on an event
            }
            let (item, iter) = (step.item, step.iter);
            if !step.targets_built {
                if !self.deps_ready(iter, item) {
                    self.register_dep_waiter(g, iter, item);
                    return Ok(());
                }
                let targets = self.build_targets(g, iter, item);
                let step = self.gpus[g]
                    .step
                    .as_mut()
                    .expect("invariant: only handle() clears the current step, not build_targets");
                step.targets = targets;
                step.targets_built = true;
                self.mutations += 1;
            }
            // Process fetch targets until blocked or done.
            if self.process_targets(g, Slot::Current)? {
                // Blocked on a transfer; still try to overlap nothing —
                // fetches of the current step have priority.
                return Ok(());
            }
            let step = self.gpus[g]
                .step
                .as_ref()
                .expect("invariant: process_targets never clears the current-step slot");
            if !step.targets.is_empty() {
                // Stalled (tensor in flight elsewhere); retry on next event.
                return Ok(());
            }
            // All tensors resident and pinned: run.
            match item {
                WorkItem::Task { replica, task } => {
                    self.start_compute(g, replica, task)?;
                    // Kick off the prefetch for the overlapped window.
                    self.try_prefetch(g)?;
                    Ok(())
                }
                WorkItem::AllReduce { pack } => {
                    self.arrive_collective(g, iter, pack)?;
                    Ok(())
                }
            }
        }
    }

    /// Starts or continues prefetching the next queue item while the
    /// current step computes. No-op unless the scheme enables prefetch.
    fn try_prefetch(&mut self, g: usize) -> Result<(), ExecError> {
        if !self.plan.scheme.prefetch {
            return Ok(());
        }
        if self.gpus[g].prefetch.is_none() {
            // Only prefetch plain tasks whose dependencies are already
            // satisfied; collectives are barriers and must not be entered
            // early.
            let Some(&(_, iter, item)) = self.gpus[g].queue.front() else {
                return Ok(());
            };
            if matches!(item, WorkItem::AllReduce { .. }) {
                return Ok(());
            }
            if !self.deps_ready(iter, item) {
                self.register_dep_waiter(g, iter, item);
                return Ok(());
            }
            let (seq, iter, item) = self.gpus[g]
                .queue
                .pop_front()
                .expect("invariant: queue.front() returned Some just above");
            let targets = self.build_targets(g, iter, item);
            let id = self.next_step_id;
            self.next_step_id += 1;
            self.gpus[g].prefetch = Some(Step {
                id,
                seq,
                iter,
                item,
                targets,
                targets_built: true,
                pinned: Vec::new(),
                inflight: InFlight::Idle,
            });
            self.mutations += 1;
        }
        // Continue fetching if the prefetch slot is idle. Double-buffering
        // is opportunistic: if the two working sets do not fit together,
        // cancel the prefetch and fall back to serial fetching rather than
        // failing the run — the memory cost of prefetch is exactly the
        // trade-off under study (§4).
        if matches!(
            self.gpus[g].prefetch.as_ref().map(|s| &s.inflight),
            Some(InFlight::Idle)
        ) {
            match self.process_targets(g, Slot::Prefetch) {
                Ok(_) => {}
                Err(ExecError::Mem(MemError::InsufficientMemory { .. })) => {
                    self.cancel_prefetch(g)?;
                    // Each retry of the opportunistic double-buffer re-pins
                    // and re-touches resident tensors (LRU recency), so the
                    // retry must run every pass — the dense cadence.
                    self.poll.insert(g);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Abandons an in-progress prefetch: releases its pins and returns its
    /// work item to the head of the queue (no transfers can be in flight —
    /// cancellation only happens from the synchronous Idle state).
    fn cancel_prefetch(&mut self, g: usize) -> Result<(), ExecError> {
        if let Some(step) = self.gpus[g].prefetch.take() {
            debug_assert!(matches!(step.inflight, InFlight::Idle));
            for id in step.pinned {
                self.mm.unpin(id)?;
                self.wake_tensor_waiters(id);
            }
            self.gpus[g]
                .queue
                .push_front((step.seq, step.iter, step.item));
            self.mutations += 1;
        }
        Ok(())
    }

    /// Processes fetch targets for a step slot of GPU `g`. Returns `true`
    /// if an async operation was issued (caller must wait), `false` if the
    /// front target could not progress (stall) or targets are exhausted.
    fn process_targets(&mut self, g: usize, slot: Slot) -> Result<bool, ExecError> {
        loop {
            let Some(step) = self.step_ref(g, slot) else {
                return Ok(false);
            };
            let (seq, step_id) = (step.seq, step.id);
            let Some(front) = step.targets.front() else {
                return Ok(false);
            };
            match *front {
                Target::Input(key) => {
                    let id = self.tensor_id(key)?;
                    match self.mm.info(id)?.residency {
                        Residency::OnDevice(d) if d == g => {
                            self.mm.touch(id)?;
                            self.mm.pin(id)?;
                            self.update_next_use(key, seq)?;
                            let step = self.step_mut(g, slot).expect(
                                "invariant: step_ref(g, slot) was Some at the top of this \
                                 process_targets iteration and nothing clears the slot mid-target",
                            );
                            step.pinned.push(id);
                            step.targets.pop_front();
                            self.mutations += 1;
                            continue;
                        }
                        Residency::OnDevice(src) => {
                            // Needs to come from a peer GPU.
                            let plan = match self.mm.plan_fetch(id, g, self.policy.as_ref()) {
                                Ok(p) => p,
                                Err(e) => return self.spill_guard(g, slot, step_id, e),
                            };
                            let evs = self.issue_evictions(g, step_id, &plan.evictions)?;
                            if !evs.is_empty() {
                                self.step_mut(g, slot)
                                    .expect(
                                        "invariant: step_ref(g, slot) was Some at the top of this \
                                 process_targets iteration and nothing clears the slot mid-target",
                                    )
                                    .inflight = InFlight::Evicting(evs);
                                return Ok(true);
                            }
                            // A degraded route falls through to the host
                            // bounce below (resilience reroute path).
                            if self.plan.scheme.p2p && !self.route_degraded(src, g)? {
                                match self.mm.begin_p2p(id, g) {
                                    Ok((_, bytes)) => {
                                        let route = self
                                            .topo
                                            .route(Endpoint::Gpu(src), Endpoint::Gpu(g))?
                                            .to_vec();
                                        let label = self.tensor_sym(id)?;
                                        let xfer = self.issue_transfer(&route, bytes, g)?;
                                        self.transfers.insert(
                                            xfer,
                                            PendingTransfer {
                                                purpose: Purpose::Move {
                                                    gpu: g,
                                                    step: step_id,
                                                    tensor: id,
                                                },
                                                start: self.sim.now(),
                                                lane: g,
                                                kind: SpanKind::P2p,
                                                label,
                                            },
                                        );
                                        self.step_mut(g, slot).expect(
                                "invariant: step_ref(g, slot) was Some at the top of this \
                                 process_targets iteration and nothing clears the slot mid-target",
                            ).inflight =
                                            InFlight::Moving;
                                        return Ok(true);
                                    }
                                    // Pinned on the peer or racing: stall.
                                    Err(MemError::InvalidState { .. }) => {
                                        self.register_tensor_waiter(g, id);
                                        return Ok(false);
                                    }
                                    Err(e) => return self.spill_guard(g, slot, step_id, e),
                                }
                            }
                            // No p2p: bounce via host — swap it out of the
                            // peer first (§2: "only CPU-GPU swaps").
                            match self.mm.begin_swap_out(id) {
                                Ok((src, bytes)) => {
                                    let route = self
                                        .topo
                                        .route(Endpoint::Gpu(src), Endpoint::Host)?
                                        .to_vec();
                                    let label = self.tensor_sym(id)?;
                                    let xfer = self.issue_transfer(&route, bytes, src)?;
                                    self.transfers.insert(
                                        xfer,
                                        PendingTransfer {
                                            purpose: Purpose::Demote {
                                                gpu: g,
                                                step: step_id,
                                                tensor: id,
                                            },
                                            start: self.sim.now(),
                                            lane: src,
                                            kind: SpanKind::SwapOut,
                                            label,
                                        },
                                    );
                                    self.step_mut(g, slot).expect(
                                "invariant: step_ref(g, slot) was Some at the top of this \
                                 process_targets iteration and nothing clears the slot mid-target",
                            ).inflight =
                                        InFlight::WaitDemote;
                                    return Ok(true);
                                }
                                Err(MemError::InvalidState { .. }) => {
                                    self.register_tensor_waiter(g, id);
                                    return Ok(false);
                                }
                                Err(e) => return self.spill_guard(g, slot, step_id, e),
                            }
                        }
                        Residency::OnHost => {
                            let plan = match self.mm.plan_fetch(id, g, self.policy.as_ref()) {
                                Ok(p) => p,
                                Err(e) => return self.spill_guard(g, slot, step_id, e),
                            };
                            let evs = self.issue_evictions(g, step_id, &plan.evictions)?;
                            if !evs.is_empty() {
                                self.step_mut(g, slot)
                                    .expect(
                                        "invariant: step_ref(g, slot) was Some at the top of this \
                                 process_targets iteration and nothing clears the slot mid-target",
                                    )
                                    .inflight = InFlight::Evicting(evs);
                                return Ok(true);
                            }
                            let bytes = match self.mm.begin_swap_in(id, g) {
                                Ok(b) => b,
                                Err(e) => return self.spill_guard(g, slot, step_id, e),
                            };
                            let route = self.topo.route(Endpoint::Host, Endpoint::Gpu(g))?.to_vec();
                            let label = self.tensor_sym(id)?;
                            let xfer = self.issue_transfer(&route, bytes, g)?;
                            self.transfers.insert(
                                xfer,
                                PendingTransfer {
                                    purpose: Purpose::Move {
                                        gpu: g,
                                        step: step_id,
                                        tensor: id,
                                    },
                                    start: self.sim.now(),
                                    lane: g,
                                    kind: SpanKind::SwapIn,
                                    label,
                                },
                            );
                            self.step_mut(g, slot)
                                .expect(
                                    "invariant: step_ref(g, slot) was Some at the top of this \
                                 process_targets iteration and nothing clears the slot mid-target",
                                )
                                .inflight = InFlight::Moving;
                            return Ok(true);
                        }
                        // In flight somewhere: stall until it settles.
                        Residency::MovingToDevice { .. } | Residency::MovingToHost { .. } => {
                            self.register_tensor_waiter(g, id);
                            return Ok(false);
                        }
                        Residency::Dead => {
                            return Err(ExecError::Plan(format!(
                                "task needs dead tensor {}",
                                self.mm.info(id)?.name
                            )))
                        }
                    }
                }
                Target::Alloc(key) => {
                    // Idempotence: a cancelled prefetch may already have
                    // allocated this output. If a live tensor exists for
                    // the key, fetch it like an input instead of leaking a
                    // second allocation.
                    let existing_alive = self.ids.get(&key).is_some_and(|&id| {
                        self.mm
                            .info(id)
                            .is_ok_and(|i| !matches!(i.residency, Residency::Dead))
                    });
                    if existing_alive {
                        let step = self.step_mut(g, slot).expect(
                            "invariant: step_ref(g, slot) was Some at the top of this \
                                 process_targets iteration and nothing clears the slot mid-target",
                        );
                        *step
                            .targets
                            .front_mut()
                            .expect("invariant: this Target::Alloc is still the queue front") =
                            Target::Input(key);
                        continue;
                    }
                    let cfg = self.plan.graph.config();
                    let bytes = key.2.bytes(self.model, cfg.ubatch_size, cfg.opt_slots);
                    if self.mm.free_bytes(g)? < bytes {
                        let victims = match self.mm.make_room(g, bytes, self.policy.as_ref()) {
                            Ok(v) => v,
                            Err(e) => return self.spill_guard(g, slot, step_id, e),
                        };
                        let evs = self.issue_evictions(g, step_id, &victims)?;
                        if !evs.is_empty() {
                            self.step_mut(g, slot)
                                .expect(
                                    "invariant: step_ref(g, slot) was Some at the top of this \
                                 process_targets iteration and nothing clears the slot mid-target",
                                )
                                .inflight = InFlight::Evicting(evs);
                            return Ok(true);
                        }
                        // All victims dropped instantly; room is free now.
                    }
                    let name = name_of(key.1, key.2);
                    let sym = self.trace.intern(&name);
                    self.counters.label_interns += 1;
                    let id = match self.mm.alloc_on_device(name, bytes, key.2.class(), g) {
                        Ok(id) => id,
                        Err(e) => return self.spill_guard(g, slot, step_id, e),
                    };
                    self.labels.insert(id, sym);
                    self.ids.insert(key, id);
                    self.mm.pin(id)?;
                    self.update_next_use(key, seq)?;
                    let step = self.step_mut(g, slot).expect(
                        "invariant: step_ref(g, slot) was Some at the top of this \
                                 process_targets iteration and nothing clears the slot mid-target",
                    );
                    step.pinned.push(id);
                    step.targets.pop_front();
                    self.mutations += 1;
                    continue;
                }
            }
        }
    }

    fn start_compute(&mut self, g: usize, replica: usize, task: TaskId) -> Result<(), ExecError> {
        let iter = self.gpus[g]
            .step
            .as_ref()
            .expect("invariant: advance dispatches start_compute only with a populated step")
            .iter;
        let t = self.plan.graph.task(task);
        // Jitter faults rescale the effective FLOP rate of this GPU.
        let secs = t.flops as f64 / (self.topo.gpu(g)?.flops * self.compute_rate[g]);
        let tag = self.next_compute_tag;
        self.next_compute_tag += 1;
        let label = match self.task_syms.get(&(replica, task)) {
            Some(&s) => s,
            None => {
                let s = self.trace.intern(&task_label(replica, t.kind));
                self.counters.label_interns += 1;
                self.task_syms.insert((replica, task), s);
                s
            }
        };
        self.computes.insert(
            tag,
            ComputeRec {
                start: self.sim.now(),
                label,
            },
        );
        self.sim.submit_compute(g, secs, tag)?;
        self.mutations += 1;
        self.gpus[g]
            .step
            .as_mut()
            .expect("invariant: advance dispatches start_compute only with a populated step")
            .inflight = InFlight::Computing;
        self.emit(ExecEvent::TaskStarted {
            gpu: g,
            iter,
            replica,
            task,
        });
        Ok(())
    }

    fn arrive_collective(&mut self, g: usize, iter: u32, pack: usize) -> Result<(), ExecError> {
        self.gpus[g]
            .step
            .as_mut()
            .expect("invariant: advance dispatches arrive_collective only with a populated step")
            .inflight = InFlight::Collective;
        self.mutations += 1;
        let n = self.gpus.len();
        let state = self.collectives.entry((iter, pack)).or_default();
        state.arrived.insert(g);
        if state.arrived.len() < n {
            return Ok(());
        }
        let label = self.trace.intern(&format!("allreduce p{pack} i{iter}"));
        self.counters.label_interns += 1;
        // Everyone is here: issue one ring hop per GPU of 2(N−1)/N · |dW|.
        let grad_bytes: u64 = self.plan.graph.packs()[pack]
            .clone()
            .map(|l| self.model.layers[l].grad_bytes())
            .sum();
        let ring_bytes = 2 * (n as u64 - 1) * grad_bytes / n as u64;
        for src in 0..n {
            let dst = (src + 1) % n;
            let route = self
                .topo
                .route(Endpoint::Gpu(src), Endpoint::Gpu(dst))?
                .to_vec();
            let xfer = self.issue_transfer(&route, ring_bytes, src)?;
            self.transfers.insert(
                xfer,
                PendingTransfer {
                    purpose: Purpose::Collective { iter, pack },
                    start: self.sim.now(),
                    lane: src,
                    kind: SpanKind::Collective,
                    label,
                },
            );
            self.collectives
                .get_mut(&(iter, pack))
                .expect("invariant: or_default() inserted this collective entry above")
                .outstanding
                .insert(xfer);
        }
        Ok(())
    }

    fn finish_collective(&mut self, iter: u32, pack: usize) -> Result<(), ExecError> {
        self.collectives.remove(&(iter, pack));
        for g in 0..self.gpus.len() {
            let step = self.gpus[g]
                .step
                .take()
                .ok_or_else(|| ExecError::Plan(format!("gpu{g} has no step at collective end")))?;
            match step.item {
                WorkItem::AllReduce { pack: p } if p == pack => {}
                other => {
                    return Err(ExecError::Plan(format!(
                        "gpu{g} at {other:?} during allreduce {pack}"
                    )))
                }
            }
            for id in step.pinned {
                self.mm.unpin(id)?;
                // AllReduce rewrites the gradient buffers.
                self.mm.mark_dirty(id)?;
                self.wake_tensor_waiters(id);
            }
        }
        // Every GPU's barrier lifted at once.
        self.wake_all();
        Ok(())
    }

    fn finish_task(&mut self, g: usize) -> Result<(), ExecError> {
        let step = self.gpus[g]
            .step
            .take()
            .ok_or_else(|| ExecError::Plan(format!("gpu{g} compute done with no step")))?;
        let WorkItem::Task { replica, task } = step.item else {
            return Err(ExecError::Plan(format!(
                "gpu{g} compute completion for non-task item"
            )));
        };
        for id in &step.pinned {
            self.mm.unpin(*id)?;
            self.wake_tensor_waiters(*id);
        }
        let t = self.plan.graph.task(task);
        for &rf in &t.writes {
            let id = self.tensor_id(key_of(step.iter, replica, rf))?;
            self.mm.mark_dirty(id)?;
        }
        for &rf in &t.frees {
            let id = self.tensor_id(key_of(step.iter, replica, rf))?;
            self.mm.free(id)?;
            // Waiters stalled on a now-dead tensor must still advance (to
            // reach the same Dead-tensor error the dense loop would).
            self.wake_tensor_waiters(id);
        }
        self.done.insert((step.iter, replica, task));
        self.wake_dep_waiters(step.iter, replica, task);
        self.emit(ExecEvent::TaskFinished {
            gpu: g,
            iter: step.iter,
            replica,
            task,
        });
        Ok(())
    }

    fn handle(&mut self, completion: Completion) -> Result<(), ExecError> {
        match completion {
            Completion::Compute { gpu, tag } => {
                let rec = self
                    .computes
                    .remove(&tag)
                    .ok_or_else(|| ExecError::Plan(format!("unknown compute tag {tag}")))?;
                self.trace.record_sym(
                    rec.start,
                    self.sim.now(),
                    Some(gpu),
                    SpanKind::Compute,
                    rec.label,
                    self.sim.current_wave(),
                );
                self.finish_task(gpu)?;
                self.wake(gpu);
            }
            Completion::Transfer { id, .. } => {
                let pt = self
                    .transfers
                    .remove(&id)
                    .ok_or_else(|| ExecError::Plan(format!("unknown transfer {id}")))?;
                self.trace.record_sym(
                    pt.start,
                    self.sim.now(),
                    Some(pt.lane),
                    pt.kind,
                    pt.label,
                    self.sim.current_wave(),
                );
                match pt.purpose {
                    Purpose::Eviction { gpu, step, tensor } => {
                        self.mm.finish_swap_out(tensor)?;
                        let slot = self.slot_of(gpu, step).ok_or_else(|| {
                            ExecError::Plan(format!("gpu{gpu} eviction for missing step"))
                        })?;
                        let s = self
                            .step_mut(gpu, slot)
                            .expect("invariant: slot_of(gpu, step) just resolved this slot");
                        if let InFlight::Evicting(set) = &mut s.inflight {
                            set.remove(&id);
                            if set.is_empty() {
                                s.inflight = InFlight::Idle;
                            }
                        }
                        self.wake(gpu);
                        self.wake_tensor_waiters(tensor);
                    }
                    Purpose::Demote { gpu, step, tensor } => {
                        self.mm.finish_swap_out(tensor)?;
                        let slot = self.slot_of(gpu, step).ok_or_else(|| {
                            ExecError::Plan(format!("gpu{gpu} demote for missing step"))
                        })?;
                        let s = self
                            .step_mut(gpu, slot)
                            .expect("invariant: slot_of(gpu, step) just resolved this slot");
                        if matches!(s.inflight, InFlight::WaitDemote) {
                            s.inflight = InFlight::Idle;
                        }
                        self.wake(gpu);
                        self.wake_tensor_waiters(tensor);
                    }
                    Purpose::Move { gpu, step, tensor } => {
                        self.mm.finish_move_to_device(tensor)?;
                        self.mm.pin(tensor)?;
                        let slot = self.slot_of(gpu, step).ok_or_else(|| {
                            ExecError::Plan(format!("gpu{gpu} move for missing step"))
                        })?;
                        let s = self
                            .step_mut(gpu, slot)
                            .expect("invariant: slot_of(gpu, step) just resolved this slot");
                        s.pinned.push(tensor);
                        s.targets.pop_front();
                        s.inflight = InFlight::Idle;
                        self.wake(gpu);
                        self.wake_tensor_waiters(tensor);
                    }
                    Purpose::Collective { iter, pack } => {
                        let state = self.collectives.get_mut(&(iter, pack)).ok_or_else(|| {
                            ExecError::Plan(format!("unknown collective {pack}@{iter}"))
                        })?;
                        state.outstanding.remove(&id);
                        if state.outstanding.is_empty() && state.arrived.len() == self.gpus.len() {
                            self.finish_collective(iter, pack)?;
                        }
                    }
                    Purpose::Flush { tensor } => {
                        self.mm.finish_swap_out(tensor)?;
                        self.wake_tensor_waiters(tensor);
                    }
                }
            }
            Completion::Timer { tag } => {
                // Tags at/above the bias are resilience retries; below the
                // fault count they are injected faults; others (e.g. the
                // simulator's zero-byte-transfer bias) are inert.
                if tag >= RETRY_TAG_BIAS {
                    self.handle_retry_timer(tag)?;
                } else if let Some(tf) = self.faults.get(tag as usize).copied() {
                    self.apply_fault(tf.fault)?;
                    // A fault can unblock (or re-block) anything: capacity
                    // and rate changes have global reach. Rare, so the full
                    // wake is cheap; over-waking is always safe.
                    self.wake_all();
                }
            }
        }
        Ok(())
    }
}

/// Tensor keys an item touches during iteration `iter` (for the
/// future-use table).
fn item_keys(plan: &ExecutionPlan, iter: u32, item: WorkItem) -> Vec<Key> {
    match item {
        WorkItem::Task { replica, task } => plan
            .graph
            .task(task)
            .touched()
            .into_iter()
            .map(|rf| key_of(iter, replica, rf))
            .collect(),
        WorkItem::AllReduce { pack } => plan.graph.packs()[pack]
            .clone()
            .flat_map(|l| {
                (0..plan.replicas).map(move |r| key_of(iter, r, TensorRef::Grad { layer: l }))
            })
            .collect(),
    }
}

fn name_of(replica: usize, rf: TensorRef) -> String {
    match rf {
        TensorRef::Weight { layer } => format!("r{replica}.L{layer}.W"),
        TensorRef::Grad { layer } => format!("r{replica}.L{layer}.dW"),
        TensorRef::OptState { layer } => format!("r{replica}.L{layer}.K"),
        TensorRef::Activation { layer, ubatch } => format!("r{replica}.L{layer}.Y.u{ubatch}"),
        TensorRef::ActGrad { layer, ubatch } => format!("r{replica}.L{layer}.dY.u{ubatch}"),
        TensorRef::Stash { layer, ubatch } => format!("r{replica}.L{layer}.stash.u{ubatch}"),
        TensorRef::WeightStash { layer, ubatch } => format!("r{replica}.L{layer}.Wstash.u{ubatch}"),
        TensorRef::Input { ubatch } => format!("r{replica}.input.u{ubatch}"),
    }
}

fn task_label(replica: usize, kind: harmony_taskgraph::TaskKind) -> String {
    use harmony_taskgraph::TaskKind::*;
    match kind {
        Forward { pack, ubatch } => format!("F p{pack} u{ubatch} r{replica}"),
        Loss { ubatch } => format!("Loss u{ubatch} r{replica}"),
        Backward { pack, ubatch } => format!("B p{pack} u{ubatch} r{replica}"),
        Update { pack } => format!("U p{pack} r{replica}"),
    }
}
