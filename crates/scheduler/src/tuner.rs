//! The Performance Tuner (paper §3, Fig 3): profile-guided search over the
//! "memory–performance tango" (§4) — pack size × microbatch count ×
//! recompute-vs-swap.
//!
//! The paper leaves the policy open ("a reinforcement learning agent can
//! be used"); this implementation does what its Fig 3 requires of the
//! component: profile candidate configurations on the runtime (here, the
//! simulator) and feed the best one back to the Task Decomposer and
//! Scheduler. The search is an exhaustive sweep over a small candidate
//! grid — the same profiling loop an RL agent would drive, with a
//! deterministic selection rule.

use harmony_models::ModelSpec;
use harmony_topology::Topology;
use harmony_trace::summary::RunSummary;

use crate::config::WorkloadConfig;
use crate::exec::{ExecError, SimExecutor};
use crate::plan::ExecutionPlan;

/// One profiled configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TunePoint {
    /// Layers per pack.
    pub pack_size: usize,
    /// Microbatches per GPU.
    pub microbatches: usize,
    /// Whether pack-boundary recomputation replaced activation stashing
    /// (§4's recompute-vs-swap trade).
    pub recompute: bool,
    /// Measured summary (None if the configuration was infeasible, e.g. a
    /// pack's working set exceeded device memory).
    pub summary: Option<RunSummary>,
}

impl TunePoint {
    /// Throughput of this point (0 for infeasible points).
    pub fn throughput(&self) -> f64 {
        self.summary.as_ref().map_or(0.0, RunSummary::throughput)
    }
}

/// Result of a tuning sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// All profiled points, in sweep order.
    pub points: Vec<TunePoint>,
    /// Index of the best feasible point (highest throughput), if any.
    pub best: Option<usize>,
    /// Grid cells whose plan-relevant knobs `(pack_size, microbatches,
    /// recompute)` duplicated an earlier cell: served from that cell's
    /// profile instead of being re-planned and re-simulated.
    pub plan_cache_hits: u64,
    /// Distinct cells actually planned and profiled.
    pub plan_cache_misses: u64,
}

impl TuneResult {
    /// The best point, if any configuration was feasible.
    pub fn best_point(&self) -> Option<&TunePoint> {
        self.best.map(|i| &self.points[i])
    }
}

/// Profiles `planner(workload)` across the candidate grid and returns every
/// measurement plus the argmax. Infeasible configurations (executor errors)
/// are recorded with `summary: None` rather than aborting the sweep — the
/// tango's cliff edge is part of the result.
///
/// Each grid point is an independent simulation, so the sweep fans out on
/// the `harmony-parallel` work pool; results are collected in sweep order
/// and the argmax rule below is total, so the outcome is identical at any
/// worker count.
pub fn tune<F>(
    model: &ModelSpec,
    topo: &Topology,
    base: &WorkloadConfig,
    pack_sizes: &[usize],
    microbatch_counts: &[usize],
    recompute_options: &[bool],
    planner: F,
) -> TuneResult
where
    F: Fn(&ModelSpec, &WorkloadConfig) -> Result<ExecutionPlan, String> + Sync,
{
    let grid: Vec<(usize, usize, bool)> = pack_sizes
        .iter()
        .flat_map(|&pack| {
            microbatch_counts
                .iter()
                .flat_map(move |&m| recompute_options.iter().map(move |&rc| (pack, m, rc)))
        })
        .collect();
    // The planner is a pure function of the workload, so two cells with
    // the same plan key `(pack, m, recompute)` would produce identical
    // plans and identical simulations. Profile each distinct cell once and
    // fan the results back out in sweep order — a caller-supplied grid with
    // repeated knob values costs one simulation per *distinct* cell.
    let mut unique: Vec<(usize, usize, bool)> = Vec::new();
    let mut slot: Vec<usize> = Vec::with_capacity(grid.len());
    for &cell in &grid {
        match unique.iter().position(|&u| u == cell) {
            Some(i) => slot.push(i),
            None => {
                slot.push(unique.len());
                unique.push(cell);
            }
        }
    }
    let profiled = harmony_parallel::par_map(&unique, |_, &(pack, m, rc)| {
        let w = WorkloadConfig {
            pack_size: pack,
            microbatches: m,
            recompute: rc,
            ..*base
        };
        let summary = planner(model, &w)
            .map_err(ExecError::Plan)
            .and_then(|plan| SimExecutor::new(topo, model, &plan)?.run())
            .ok()
            .map(|(s, _)| s);
        TunePoint {
            pack_size: pack,
            microbatches: m,
            recompute: rc,
            summary,
        }
    });
    let points: Vec<TunePoint> = slot.iter().map(|&i| profiled[i].clone()).collect();
    let best = select_best(&points);
    TuneResult {
        points,
        best,
        plan_cache_hits: (grid.len() - unique.len()) as u64,
        plan_cache_misses: unique.len() as u64,
    }
}

/// Deterministic argmax over feasible points: highest finite throughput
/// (`f64::total_cmp`, so NaN/∞ summaries are treated as infeasible rather
/// than silently winning or tying), ties broken first toward
/// `recompute = false` (recomputation burns FLOPs; it must *strictly* beat
/// swapping to be selected), then toward the smaller `pack_size`, then the
/// smaller `microbatches` — the same `best` whatever the sweep order or
/// worker count.
fn select_best(points: &[TunePoint]) -> Option<usize> {
    points
        .iter()
        .enumerate()
        .filter(|(_, p)| p.summary.is_some() && p.throughput().is_finite())
        .max_by(|(_, a), (_, b)| {
            a.throughput()
                .total_cmp(&b.throughput())
                // `max_by` keeps the later element on Equal; reverse the
                // knob comparisons so the smaller configuration compares
                // greater and wins deterministically.
                .then_with(|| b.recompute.cmp(&a.recompute))
                .then_with(|| b.pack_size.cmp(&a.pack_size))
                .then_with(|| b.microbatches.cmp(&a.microbatches))
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan_harmony_pp;
    use harmony_models::{LayerClass, LayerSpec};
    use harmony_topology::presets::{commodity_server, CommodityParams, GBPS};

    fn model() -> ModelSpec {
        ModelSpec {
            name: "tuner-model".to_string(),
            layers: (0..8)
                .map(|i| LayerSpec {
                    name: format!("L{i}"),
                    class: LayerClass::Other,
                    params: 4096,
                    fwd_flops_per_sample: 8192,
                    out_elems_per_sample: 64,
                    extra_stash_elems_per_sample: 128,
                    in_elems_per_sample: 64,
                })
                .collect(),
            seq_len: 1,
        }
    }

    fn topo(mem: u64) -> Topology {
        commodity_server(CommodityParams {
            num_gpus: 2,
            gpus_per_switch: 2,
            pcie_bw: GBPS,
            host_uplink_bw: GBPS,
            gpu_mem: mem,
            gpu_flops: 1e9,
        })
        .unwrap()
    }

    fn base() -> WorkloadConfig {
        WorkloadConfig {
            microbatches: 2,
            ubatch_size: 1,
            pack_size: 1,
            opt_slots: 2,
            group_size: None,
            recompute: false,
        }
    }

    #[test]
    fn tune_profiles_every_grid_point_and_picks_the_argmax() {
        let m = model();
        let t = topo(96 * 1024);
        let result = tune(&m, &t, &base(), &[1, 2], &[1, 2], &[false], |m, w| {
            plan_harmony_pp(m, 2, w).map_err(|e| e.to_string())
        });
        assert_eq!(result.points.len(), 4);
        let best = result.best_point().expect("feasible points exist");
        for p in &result.points {
            assert!(best.throughput() >= p.throughput());
        }
    }

    #[test]
    fn infeasible_points_are_recorded_not_fatal() {
        let m = model();
        // Capacity below even a single-layer update working set: every
        // point infeasible.
        let t = topo(8 * 1024);
        let result = tune(&m, &t, &base(), &[1, 4], &[1], &[false], |m, w| {
            plan_harmony_pp(m, 2, w).map_err(|e| e.to_string())
        });
        assert_eq!(result.points.len(), 2);
        assert!(result.points.iter().all(|p| p.summary.is_none()));
        assert!(result.best.is_none());
        assert!(result.best_point().is_none());
    }

    fn point(pack: usize, m: usize, sim_secs: f64, samples: u64) -> TunePoint {
        rc_point(pack, m, false, sim_secs, samples)
    }

    fn rc_point(pack: usize, m: usize, recompute: bool, sim_secs: f64, samples: u64) -> TunePoint {
        TunePoint {
            pack_size: pack,
            microbatches: m,
            recompute,
            summary: Some(RunSummary {
                name: format!("p{pack}m{m}"),
                sim_secs,
                samples,
                swap_in_bytes: vec![0],
                swap_out_bytes: vec![0],
                p2p_bytes: 0,
                peak_mem_bytes: vec![0],
                demand_bytes: vec![0],
                swap_by_class: Default::default(),
                channel_busy_secs: Default::default(),
                events_processed: 0,
                elapsed_secs: 0.0,
                setup_secs: 0.0,
                mem_counters: None,
                resilience: None,
            }),
        }
    }

    #[test]
    fn argmax_treats_nan_throughput_as_infeasible() {
        // A NaN sim time (a corrupted measurement) must never win the
        // argmax — under the old `partial_cmp ... unwrap_or(Equal)` rule
        // it silently tied with everything and sweep position decided.
        let points = vec![
            point(1, 2, f64::NAN, 10),
            point(2, 2, 2.0, 10),
            point(4, 2, f64::NAN, 10),
        ];
        assert_eq!(select_best(&points), Some(1));
        let all_nan = vec![point(1, 2, f64::NAN, 10), point(2, 2, f64::NAN, 10)];
        assert_eq!(select_best(&all_nan), None);
    }

    #[test]
    fn argmax_breaks_throughput_ties_toward_smaller_knobs() {
        // Equal throughput: the smaller pack_size must win regardless of
        // sweep order (the old rule kept whichever came last).
        let tied = vec![
            point(4, 2, 1.0, 5),
            point(2, 2, 1.0, 5),
            point(8, 2, 1.0, 5),
        ];
        assert_eq!(select_best(&tied), Some(1));
        let reversed: Vec<TunePoint> = tied.iter().rev().cloned().collect();
        assert_eq!(select_best(&reversed), Some(1));
        // Same pack_size: the smaller microbatch count wins.
        let m_tied = vec![point(2, 8, 1.0, 5), point(2, 4, 1.0, 5)];
        assert_eq!(select_best(&m_tied), Some(1));
    }

    #[test]
    fn argmax_prefers_swapping_over_recompute_on_ties() {
        // Recompute burns extra forward FLOPs for the same logical work,
        // so on a throughput tie the non-recompute plan must win — and it
        // outranks the pack-size tie-break: a tied recompute point never
        // wins on a smaller pack.
        let tied = vec![rc_point(1, 2, true, 1.0, 5), rc_point(1, 2, false, 1.0, 5)];
        assert_eq!(select_best(&tied), Some(1));
        let reversed: Vec<TunePoint> = tied.iter().rev().cloned().collect();
        assert_eq!(select_best(&reversed), Some(0));
        let cross = vec![rc_point(1, 2, true, 1.0, 5), rc_point(4, 2, false, 1.0, 5)];
        assert_eq!(select_best(&cross), Some(1));
        // A strictly faster recompute point still wins outright.
        let faster = vec![rc_point(1, 2, false, 2.0, 5), rc_point(1, 2, true, 1.0, 5)];
        assert_eq!(select_best(&faster), Some(1));
    }

    /// A stash-heavy layer under tight memory: stashed activations are
    /// forced through the PCIe swap channel every microbatch, while the
    /// layer's forward is cheap — §4's regime where recomputation beats
    /// swapping. The tuner's grid must surface a cell where the recompute
    /// plan's measured throughput strictly exceeds the swap plan's, and
    /// the argmax must select it despite the recompute=false tie-break.
    #[test]
    fn recompute_beats_swapping_on_stash_heavy_cells() {
        let m = ModelSpec {
            name: "stash-heavy".to_string(),
            layers: (0..8)
                .map(|i| LayerSpec {
                    name: format!("L{i}"),
                    class: LayerClass::Other,
                    params: 4096,
                    fwd_flops_per_sample: 8192,
                    out_elems_per_sample: 64,
                    // 16× the weight bytes in per-microbatch stash traffic.
                    extra_stash_elems_per_sample: 16384,
                    in_elems_per_sample: 64,
                })
                .collect(),
            seq_len: 1,
        };
        let t = topo(96 * 1024);
        let result = tune(&m, &t, &base(), &[1], &[2], &[false, true], |m, w| {
            plan_harmony_pp(m, 2, w).map_err(|e| e.to_string())
        });
        assert_eq!(result.points.len(), 2);
        let swap = result.points.iter().find(|p| !p.recompute).unwrap();
        let recomp = result.points.iter().find(|p| p.recompute).unwrap();
        assert!(
            recomp.throughput() > swap.throughput(),
            "recompute {} should strictly beat swapping {}",
            recomp.throughput(),
            swap.throughput()
        );
        assert!(
            result.best_point().unwrap().recompute,
            "argmax must surface the recompute cell"
        );
    }

    #[test]
    fn tune_is_identical_across_worker_counts() {
        let m = model();
        let t = topo(96 * 1024);
        let sweep = || {
            tune(
                &m,
                &t,
                &base(),
                &[1, 2, 4, 8],
                &[1, 2],
                &[false, true],
                |m, w| plan_harmony_pp(m, 2, w).map_err(|e| e.to_string()),
            )
        };
        let sequential = harmony_parallel::with_workers(1, sweep);
        for workers in [2, 3, 8] {
            let parallel = harmony_parallel::with_workers(workers, sweep);
            assert_eq!(parallel, sequential, "workers = {workers} diverged");
        }
    }

    #[test]
    fn duplicate_grid_cells_hit_the_plan_cache() {
        let m = model();
        let t = topo(96 * 1024);
        // 3×2 grid with one repeated pack size: 6 cells, 4 distinct.
        let deduped = tune(&m, &t, &base(), &[1, 2, 1], &[1, 2], &[false], |m, w| {
            plan_harmony_pp(m, 2, w).map_err(|e| e.to_string())
        });
        assert_eq!(deduped.points.len(), 6, "sweep order keeps every cell");
        assert_eq!(deduped.plan_cache_hits, 2);
        assert_eq!(deduped.plan_cache_misses, 4);
        // The fanned-back points are the distinct cells' profiles verbatim.
        assert_eq!(deduped.points[0], deduped.points[4]);
        assert_eq!(deduped.points[1], deduped.points[5]);
        // And a duplicate-free sweep reports no hits.
        let fresh = tune(&m, &t, &base(), &[1, 2], &[1, 2], &[false], |m, w| {
            plan_harmony_pp(m, 2, w).map_err(|e| e.to_string())
        });
        assert_eq!(fresh.plan_cache_hits, 0);
        assert_eq!(fresh.plan_cache_misses, 4);
        assert_eq!(&deduped.points[..4], &fresh.points[..]);
    }

    #[test]
    fn mixed_feasibility_selects_among_feasible_only() {
        let m = model();
        // Packs of 8 layers exceed the 96 KiB device; packs of 1 fit.
        let t = topo(96 * 1024);
        let result = tune(&m, &t, &base(), &[1, 8], &[2], &[false], |m, w| {
            plan_harmony_pp(m, 2, w).map_err(|e| e.to_string())
        });
        let feasible: Vec<bool> = result.points.iter().map(|p| p.summary.is_some()).collect();
        assert_eq!(feasible, vec![true, false]);
        assert_eq!(result.best, Some(0));
    }
}
