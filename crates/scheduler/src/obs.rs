//! Observer hooks and fault injection for the simulation executor.
//!
//! An [`ExecObserver`] receives [`ExecEvent`]s from [`SimExecutor`]
//! (task lifecycle, issued transfers, applied faults, run completion)
//! with a read-only [`ExecContext`] view of the executor's state. Like
//! the memory manager's observers, they exist for the conformance
//! harness's invariant oracles: production runs attach none and pay one
//! branch per event.
//!
//! [`Fault`]s are deterministic, timed perturbations applied through the
//! simulator's event queue: each [`TimedFault`] schedules a timer, and
//! when it fires the executor degrades a link, squeezes a device's
//! capacity, or rescales a GPU's compute rate. Runs remain bit-for-bit
//! deterministic for a fixed fault list.
//!
//! [`SimExecutor`]: crate::SimExecutor

use std::collections::HashSet;

use harmony_memory::MemoryManager;
use harmony_simulator::Simulator;
use harmony_taskgraph::TaskId;
use harmony_topology::ChannelId;

use crate::plan::ExecutionPlan;

/// A deterministic runtime perturbation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Rescale a link's bandwidth to `factor` × its topology-nominal
    /// value (e.g. `0.25` models a degraded PCIe link).
    LinkBandwidth {
        /// Channel to degrade.
        channel: ChannelId,
        /// Multiplier on the nominal bandwidth (must be positive).
        factor: f64,
    },
    /// Shrink a device's memory capacity to `factor` × its nominal size
    /// (clamped so currently charged bytes still fit).
    CapacitySqueeze {
        /// GPU whose memory shrinks.
        gpu: usize,
        /// Multiplier on the nominal capacity.
        factor: f64,
    },
    /// Rescale a GPU's compute rate: subsequent kernels run at
    /// `factor` × the nominal FLOP rate (`0.5` = half speed).
    ComputeJitter {
        /// GPU affected.
        gpu: usize,
        /// Multiplier on the nominal compute rate (must be positive).
        factor: f64,
    },
}

/// A fault scheduled at a virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedFault {
    /// Virtual time (seconds) at which the fault applies.
    pub at: f64,
    /// The perturbation.
    pub fault: Fault,
}

/// Read-only executor state handed to observers with each event.
pub struct ExecContext<'c> {
    /// The plan being executed.
    pub plan: &'c ExecutionPlan,
    /// The memory manager (post-transition state).
    pub mm: &'c MemoryManager,
    /// The simulator.
    pub sim: &'c Simulator,
    /// Completed tasks, keyed by `(iteration, replica, task)`.
    pub done: &'c HashSet<(u32, usize, TaskId)>,
}

/// An executor state transition.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecEvent {
    /// A task's kernel was submitted to its GPU (all inputs resident and
    /// pinned; dependencies must already be in `ctx.done`).
    TaskStarted {
        /// GPU running the kernel.
        gpu: usize,
        /// Iteration index.
        iter: u32,
        /// Replica index.
        replica: usize,
        /// Task id within the plan's graph.
        task: TaskId,
    },
    /// A task's kernel completed and its effects (dirty marks, frees)
    /// were applied.
    TaskFinished {
        /// GPU that ran the kernel.
        gpu: usize,
        /// Iteration index.
        iter: u32,
        /// Replica index.
        replica: usize,
        /// Task id within the plan's graph.
        task: TaskId,
    },
    /// A transfer was handed to the simulator.
    TransferIssued {
        /// Ordered channels of the route.
        route: Vec<ChannelId>,
        /// Payload bytes.
        bytes: u64,
    },
    /// An injected fault was applied.
    FaultApplied {
        /// The perturbation that took effect.
        fault: Fault,
    },
    /// The resilience layer parked a step in pressure-spill mode: a
    /// post-fault capacity shortfall that would previously have aborted
    /// the run is now handled by evict-and-retry with backoff.
    PressureSpill {
        /// GPU whose current step spilled.
        gpu: usize,
        /// Bytes the failed allocation/fetch needed free.
        needed: u64,
    },
    /// The resilience layer cancelled an in-flight p2p move off a
    /// degraded channel; the fetch will be retried over the host-bounce
    /// path after a seeded backoff.
    TransferRerouted {
        /// GPU whose fetch was rerouted.
        gpu: usize,
        /// The degraded channel the cancelled route crossed.
        channel: ChannelId,
    },
    /// The run drained and flushed; emitted once before the summary is
    /// built. Oracles perform end-of-run completeness checks here.
    RunFinished,
}

/// Receives executor state transitions. See module docs.
pub trait ExecObserver: std::fmt::Debug {
    /// Called after each transition; `ctx` reflects the state *after* it.
    fn on_event(&mut self, ctx: &ExecContext<'_>, event: &ExecEvent);
}

/// A reuse pool for heap-carrying [`ExecEvent`] payloads.
///
/// Events are delivered to observers by reference and dropped after
/// dispatch, so any buffer inside one (today: the route vector of
/// [`ExecEvent::TransferIssued`]) can be recycled instead of reallocated
/// per event. The executor takes a cleared buffer before constructing the
/// event and reclaims it after dispatch; with zero observers attached no
/// event is built and the pool is never touched. Capacity is retained
/// across reuse, so a steady-state observed run performs no per-event
/// heap allocation for event payloads.
#[derive(Debug, Default)]
pub struct EventPool {
    routes: Vec<Vec<ChannelId>>,
}

impl EventPool {
    /// Takes an empty route buffer out of the pool (allocating only when
    /// the pool is dry — the first few events of a run).
    pub fn take_route(&mut self) -> Vec<ChannelId> {
        self.routes.pop().unwrap_or_default()
    }

    /// Returns a route buffer to the pool, clearing it but keeping its
    /// capacity for the next event.
    pub fn reclaim_route(&mut self, mut route: Vec<ChannelId>) {
        route.clear();
        self.routes.push(route);
    }
}
