//! # harmony-sched
//!
//! Harmony's **Task and Swap Scheduler** (paper §3, Fig 3) plus the
//! baselines it is compared against. A *planner* lowers a decomposed task
//! graph onto a topology as an [`ExecutionPlan`] — an ordered per-GPU work
//! queue with a scheme configuration — and the shared [`SimExecutor`] runs
//! any plan on the discrete-event simulator with full memory
//! virtualization.
//!
//! Crucially, the **same executor** runs baselines and Harmony: the swap
//! volumes and throughputs of the paper's figures are *emergent* from task
//! order, placement, and memory policy — they are not hard-coded. The four
//! schemes differ only in:
//!
//! | scheme | task order | update | p2p | clean-drop | eviction |
//! |---|---|---|---|---|---|
//! | Baseline-DP | µbatch-major | end of iteration | no | no | LRU |
//! | Baseline-PP (1F1B) | per-stage 1F1B | end of iteration | handoffs | no | LRU |
//! | Harmony-DP | layer-major (input-batch grouping) | JIT per layer | yes | yes | next-use-aware |
//! | Harmony-PP | stage + grouping (Fig 4) | JIT per layer | yes | yes | next-use-aware |
//!
//! which are exactly the paper's four optimizations (input-batch grouping,
//! JIT scheduling, p2p transfers, task packing/balancing) plus the
//! cleanliness tracking that makes a grouped forward's weight eviction
//! free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
#[cfg(feature = "dense_advance")]
pub(crate) mod dense;
pub mod dp;
pub mod exec;
pub mod obs;
pub mod plan;
pub mod pp;
pub mod shard;
pub mod slab;
pub mod tuner;

pub use config::{PolicyKind, SchemeConfig, WorkloadConfig};
pub use dp::{plan_baseline_dp, plan_harmony_dp};
pub use exec::{ExecCounters, ExecError, ExecPool, SimExecutor};
pub use obs::{ExecContext, ExecEvent, ExecObserver, Fault, TimedFault};
pub use plan::{ExecutionPlan, WorkItem};
pub use pp::{
    partition_packs, plan_baseline_pp, plan_harmony_pp, plan_pipe_1f1b, PartitionObjective,
};
pub use shard::{run_sharded, ShardReport, ShardRunConfig};
pub use slab::{Slab, SlabError, SlabHandle};
