//! Data-parallel planners: baseline DDP-style vs Harmony-DP.

use harmony_models::ModelSpec;
use harmony_taskgraph::{GraphError, TaskGraph, TaskKind};

use crate::config::{SchemeConfig, WorkloadConfig};
use crate::plan::{ExecutionPlan, WorkItem};

fn dp_demand(model: &ModelSpec, w: &WorkloadConfig) -> u64 {
    // Every replica holds the full training state: W + dW + K + m
    // microbatches of stash.
    model.training_footprint_bytes(w.ubatch_size, w.opt_slots)
        + (w.microbatches as u64 - 1)
            * model
                .layers
                .iter()
                .map(|l| l.stash_bytes(w.ubatch_size))
                .sum::<u64>()
}

/// Baseline data parallelism with per-GPU memory virtualization
/// (PyTorch-DDP-style): each GPU runs its microbatches *µbatch-major*
/// (full forward then full backward per microbatch), gradients are
/// all-reduced per layer pack, and every weight update waits until the end
/// of the iteration (§2 inefficiency 2).
pub fn plan_baseline_dp(
    model: &ModelSpec,
    n_gpus: usize,
    w: &WorkloadConfig,
) -> Result<ExecutionPlan, GraphError> {
    let graph = TaskGraph::build(model, w.graph_config(w.microbatches))?;
    let np = graph.packs().len();
    let m = w.microbatches;
    let mut queues = Vec::with_capacity(n_gpus);
    for r in 0..n_gpus {
        let mut q = Vec::new();
        let t = |kind| WorkItem::Task {
            replica: r,
            task: graph.id_of(kind).expect("task exists by construction"),
        };
        for u in 0..m {
            for p in 0..np {
                q.push(t(TaskKind::Forward { pack: p, ubatch: u }));
            }
            q.push(t(TaskKind::Loss { ubatch: u }));
            for p in (0..np).rev() {
                q.push(t(TaskKind::Backward { pack: p, ubatch: u }));
            }
        }
        // Rigid epilogue: all collectives, then all updates.
        if n_gpus > 1 {
            for p in (0..np).rev() {
                q.push(WorkItem::AllReduce { pack: p });
            }
        }
        for p in (0..np).rev() {
            q.push(t(TaskKind::Update { pack: p }));
        }
        queues.push(q);
    }
    Ok(ExecutionPlan {
        name: format!("baseline-dp(N={n_gpus},m={m})"),
        graph,
        replicas: n_gpus,
        queues,
        scheme: SchemeConfig::baseline("baseline-dp"),
        samples_per_iteration: n_gpus as u64 * m as u64 * w.ubatch_size,
        demand_bytes: vec![dp_demand(model, w); n_gpus],
    })
}

/// Harmony-DP: input-batch grouping (layer-major order — each pack runs all
/// its microbatches back-to-back, Fig 5c), gradient AllReduce as soon as a
/// pack's backward finishes, and JIT weight update immediately after, while
/// `W`, `dW`, `K` are still resident.
pub fn plan_harmony_dp(
    model: &ModelSpec,
    n_gpus: usize,
    w: &WorkloadConfig,
) -> Result<ExecutionPlan, GraphError> {
    let graph = TaskGraph::build(model, w.graph_config(w.microbatches))?;
    let np = graph.packs().len();
    let m = w.microbatches;
    let mut queues = Vec::with_capacity(n_gpus);
    for r in 0..n_gpus {
        let mut q = Vec::new();
        let t = |kind| WorkItem::Task {
            replica: r,
            task: graph.id_of(kind).expect("task exists by construction"),
        };
        // Grouped forward sweep (group = m by default; smaller groups are
        // only interesting for pipeline overlap, but the knob is honoured
        // here too so the tuner can explore it uniformly).
        let gsz = w.effective_group(m);
        let groups: Vec<std::ops::Range<usize>> =
            (0..m).step_by(gsz).map(|s| s..(s + gsz).min(m)).collect();
        for g in &groups {
            for p in 0..np {
                for u in g.clone() {
                    q.push(t(TaskKind::Forward { pack: p, ubatch: u }));
                }
            }
            for u in g.clone() {
                q.push(t(TaskKind::Loss { ubatch: u }));
            }
        }
        // Grouped backward sweep with JIT reduce + update per pack.
        for (gi, g) in groups.iter().enumerate().rev() {
            for p in (0..np).rev() {
                for u in g.clone() {
                    q.push(t(TaskKind::Backward { pack: p, ubatch: u }));
                }
                if gi == 0 {
                    if n_gpus > 1 {
                        q.push(WorkItem::AllReduce { pack: p });
                    }
                    q.push(t(TaskKind::Update { pack: p }));
                }
            }
        }
        queues.push(q);
    }
    Ok(ExecutionPlan {
        name: format!("harmony-dp(N={n_gpus},m={m})"),
        graph,
        replicas: n_gpus,
        queues,
        scheme: SchemeConfig::harmony("harmony-dp"),
        samples_per_iteration: n_gpus as u64 * m as u64 * w.ubatch_size,
        demand_bytes: vec![dp_demand(model, w); n_gpus],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_models::TransformerConfig;

    fn workload() -> WorkloadConfig {
        WorkloadConfig {
            microbatches: 3,
            ubatch_size: 2,
            pack_size: 1,
            opt_slots: 2,
            group_size: None,
            recompute: false,
        }
    }

    #[test]
    fn both_plans_validate() {
        let model = TransformerConfig::tiny().build();
        for plan in [
            plan_baseline_dp(&model, 2, &workload()).unwrap(),
            plan_harmony_dp(&model, 2, &workload()).unwrap(),
        ] {
            plan.validate().unwrap();
            assert_eq!(plan.replicas, 2);
            assert_eq!(plan.queues.len(), 2);
            assert_eq!(plan.samples_per_iteration, 2 * 3 * 2);
        }
    }

    #[test]
    fn baseline_is_ubatch_major_harmony_is_layer_major() {
        let model = TransformerConfig::tiny().build();
        let b = plan_baseline_dp(&model, 1, &workload()).unwrap();
        let h = plan_harmony_dp(&model, 1, &workload()).unwrap();
        // Baseline: first two items are F(p0,u0), F(p1,u0).
        let kind = |plan: &ExecutionPlan, i: usize| match plan.queues[0][i] {
            WorkItem::Task { task, .. } => plan.graph.task(task).kind,
            _ => panic!("expected task"),
        };
        assert_eq!(kind(&b, 0), TaskKind::Forward { pack: 0, ubatch: 0 });
        assert_eq!(kind(&b, 1), TaskKind::Forward { pack: 1, ubatch: 0 });
        // Harmony: first two items are F(p0,u0), F(p0,u1) — grouping.
        assert_eq!(kind(&h, 0), TaskKind::Forward { pack: 0, ubatch: 0 });
        assert_eq!(kind(&h, 1), TaskKind::Forward { pack: 0, ubatch: 1 });
    }

    #[test]
    fn harmony_updates_are_jit_baseline_updates_trail() {
        let model = TransformerConfig::tiny().build();
        let b = plan_baseline_dp(&model, 2, &workload()).unwrap();
        let h = plan_harmony_dp(&model, 2, &workload()).unwrap();
        let np = b.graph.packs().len();
        // Baseline: the last np items are updates.
        let q = &b.queues[0];
        for item in &q[q.len() - np..] {
            match item {
                WorkItem::Task { task, .. } => {
                    assert!(matches!(b.graph.task(*task).kind, TaskKind::Update { .. }));
                }
                _ => panic!("expected update tail"),
            }
        }
        // Harmony: each Update is immediately preceded by its AllReduce,
        // which follows the pack's final backward.
        let q = &h.queues[0];
        for (i, item) in q.iter().enumerate() {
            if let WorkItem::Task { task, .. } = item {
                if let TaskKind::Update { pack } = h.graph.task(*task).kind {
                    assert_eq!(q[i - 1], WorkItem::AllReduce { pack });
                    match q[i - 2] {
                        WorkItem::Task { task: bt, .. } => {
                            assert_eq!(
                                h.graph.task(bt).kind,
                                TaskKind::Backward {
                                    pack,
                                    ubatch: workload().microbatches - 1
                                }
                            );
                        }
                        _ => panic!("expected backward before reduce"),
                    }
                }
            }
        }
    }

    #[test]
    fn single_gpu_plans_skip_collectives() {
        let model = TransformerConfig::tiny().build();
        for plan in [
            plan_baseline_dp(&model, 1, &workload()).unwrap(),
            plan_harmony_dp(&model, 1, &workload()).unwrap(),
        ] {
            assert!(plan.queues[0]
                .iter()
                .all(|i| !matches!(i, WorkItem::AllReduce { .. })));
        }
    }

    #[test]
    fn demand_exceeds_weights_and_grows_with_microbatches() {
        let model = TransformerConfig::tiny().build();
        let d3 = plan_baseline_dp(&model, 1, &workload())
            .unwrap()
            .demand_bytes[0];
        let mut w6 = workload();
        w6.microbatches = 6;
        let d6 = plan_baseline_dp(&model, 1, &w6).unwrap().demand_bytes[0];
        assert!(d3 > model.total_weight_bytes());
        assert!(d6 > d3);
    }
}
