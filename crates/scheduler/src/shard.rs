//! Sharded data-parallel execution (DESIGN §12).
//!
//! [`run_sharded`] partitions a replica-aligned [`ExecutionPlan`] along
//! its replica axis, runs each partition through its own [`SimExecutor`]
//! on its own OS thread, and reassembles one whole-run trace and
//! [`RunSummary`] that is **byte-identical** to the unsharded executor's
//! output — the first time `harmony-parallel` machinery runs *inside* a
//! single run rather than around whole runs.
//!
//! ## Why this is sound
//!
//! * **Partition boundary = contention boundary.** Shards are unions of
//!   *contention atoms*: connected components of GPUs that share a
//!   host-route channel. Replica-aligned DP traffic (fetches, evictions,
//!   flushes) never leaves a GPU's own host routes, so traffic from
//!   different shards never shares a channel and per-shard fair-share
//!   bandwidth math reproduces the global run exactly. A topology where
//!   all GPUs share one switch uplink is a single atom — the shard count
//!   is clamped and the run falls back to the ordinary executor rather
//!   than silently diverging.
//! * **Collectives are rendezvous points.** A GPU arrives at an
//!   AllReduce only when its network is locally quiescent, so the shards
//!   agree (via [`ShardBarrier`]) on the globally latest arrival time
//!   and *every* shard issues the full N-hop ring at that instant — the
//!   hop timeline is identical everywhere, and each hop span/completion
//!   is attributed to its owner shard at merge time.
//! * **The final flush is a rendezvous too.** Shards drain their local
//!   queues at different local times; a last barrier + inert sync timer
//!   advances every shard's clock to the global drain time before
//!   [`SimExecutor`] flushes dirty state, so flush spans and `sim_secs`
//!   match the unsharded run.
//!
//! The merge itself ([`harmony_trace::merge`]) is a stable k-way merge
//! on the span key `(end-bits, wave, lane)` with owner filtering;
//! summaries merge by per-GPU/per-channel ownership. The simulator's
//! wave-major, lane-major same-instant order — both labels shard-
//! invariant, and the rendezvous carries `(time, wave)` so control
//! timers re-enter the whole run's wave — makes that key reproduce the
//! unsharded emission order; the execdiff harness additionally *proves*
//! byte equality per tested configuration.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex};

use harmony_models::ModelSpec;
use harmony_topology::{ChannelId, Endpoint, Topology};
use harmony_trace::merge::{merge_summaries, merge_traces, MergeSpec};
use harmony_trace::{summary::RunSummary, Trace};

use crate::exec::{ExecCounters, ExecError, SimExecutor};
use crate::obs::TimedFault;
use crate::plan::{ExecutionPlan, WorkItem};

/// A rendezvous round. Every shard must arrive at the *same* round — the
/// key cross-checks the protocol itself (a mismatch means the plan was
/// not actually replica-aligned and poisons the barrier).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Round {
    /// The AllReduce barrier of `(iter, pack)`.
    Collective {
        /// Iteration index.
        iter: u32,
        /// Pack index.
        pack: usize,
    },
    /// The end-of-run rendezvous before the dirty-state flush.
    Final,
}

/// Per-shard context installed into a [`SimExecutor`].
pub(crate) struct ShardCtx {
    /// Rendezvous barrier shared by all shards of the run.
    pub barrier: Arc<ShardBarrier>,
    /// `local[g]` — GPU `g`'s replica belongs to this shard.
    pub local: Vec<bool>,
    /// Number of local replicas (the collective quorum).
    pub local_n: usize,
    /// This shard's index (shard 0 owns fault timers and unowned channels).
    pub shard_index: usize,
}

#[derive(Default)]
struct BarrierState {
    arrived: usize,
    key: Option<Round>,
    t_max: (f64, u32),
    release: (f64, u32),
    generation: u64,
    poison: Option<String>,
}

/// A reusable rendezvous barrier over virtual time: each round, every
/// shard arrives with its local clock and intra-instant wave, and all of
/// them are released with the lexicographic `(time, wave)` maximum — the
/// instant *and causal phase* the unsharded run would act at (its
/// barrier logic runs inside the handler of the globally last arrival,
/// whose wave is exactly that maximum). Poisonable, so one shard's
/// failure (error or panic) releases the others instead of deadlocking
/// them mid-round.
pub(crate) struct ShardBarrier {
    shards: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

impl ShardBarrier {
    fn new(shards: usize) -> Self {
        ShardBarrier {
            shards,
            state: Mutex::new(BarrierState::default()),
            cv: Condvar::new(),
        }
    }

    /// Blocks until all shards arrive at `round`; returns the maximum
    /// `(arrival time, wave)`, or the poison message if a peer failed.
    pub(crate) fn arrive(&self, round: Round, t: (f64, u32)) -> Result<(f64, u32), String> {
        let later = |a: (f64, u32), b: (f64, u32)| -> bool {
            a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).is_gt()
        };
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(m) = &st.poison {
            return Err(m.clone());
        }
        if st.arrived == 0 {
            st.key = Some(round);
            st.t_max = t;
        } else if st.key != Some(round) {
            let m = format!(
                "shard rendezvous mismatch: {:?} vs {:?} (plan not replica-aligned?)",
                st.key, round
            );
            st.poison = Some(m.clone());
            self.cv.notify_all();
            return Err(m);
        } else if later(t, st.t_max) {
            st.t_max = t;
        }
        st.arrived += 1;
        if st.arrived == self.shards {
            st.arrived = 0;
            st.key = None;
            st.release = st.t_max;
            st.generation += 1;
            self.cv.notify_all();
            return Ok(st.release);
        }
        let gen = st.generation;
        loop {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            if let Some(m) = &st.poison {
                return Err(m.clone());
            }
            if st.generation != gen {
                return Ok(st.release);
            }
        }
    }

    /// Marks the run failed and releases every waiter (first message wins).
    pub(crate) fn poison(&self, msg: &str) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.poison.is_none() {
            st.poison = Some(msg.to_string());
        }
        self.cv.notify_all();
    }
}

/// Configuration of a sharded run, mirroring the pre-run knobs the
/// harness applies to a plain [`SimExecutor`].
#[derive(Debug, Clone, Copy)]
pub struct ShardRunConfig<'f> {
    /// Back-to-back plan replays ([`SimExecutor::with_iterations`]).
    pub iterations: u32,
    /// Requested shard count; clamped to the number of contention atoms
    /// (1 ⇒ the ordinary unsharded executor runs instead).
    pub shards: usize,
    /// Injected faults (shared by every shard; shard 0 owns their timers).
    pub faults: &'f [TimedFault],
    /// Resilience-layer seed ([`SimExecutor::enable_resilience`]).
    pub resilience: Option<u64>,
}

/// What a sharded run actually did, alongside the merged outputs.
#[derive(Debug, Clone, Copy)]
pub struct ShardReport {
    /// Shards that ran after clamping (1 = fell back to unsharded).
    pub shards_used: usize,
    /// Structural counters summed across shards (`slab_high_water` is the
    /// per-shard maximum). Diagnostic only — sharded counters legitimately
    /// differ from unsharded ones (every shard simulates the full ring).
    pub counters: ExecCounters,
}

/// A shard thread's result: the merged inputs, a real failure with its
/// virtual-time position, or a barrier wait cut short by a failing peer.
enum ShardOut {
    Done(Box<(RunSummary, Trace, ExecCounters)>),
    Failed { at: f64, error: ExecError },
    PeerAborted,
}

/// True when the plan's queues map one replica to one GPU and never run
/// another replica's tasks — the shape `run_sharded` can partition.
/// Pipeline plans (shared replica 0 across GPUs) are not shardable.
fn replica_aligned(plan: &ExecutionPlan) -> bool {
    plan.replicas == plan.queues.len()
        && plan.queues.iter().enumerate().all(|(g, q)| {
            q.iter().all(|item| match item {
                WorkItem::Task { replica, .. } => *replica == g,
                WorkItem::AllReduce { .. } => true,
            })
        })
}

/// Assigns each GPU its *contention atom*: connected components under
/// "shares a host-route channel", numbered by first appearance. Replica
/// traffic stays on host routes, so distinct atoms never contend.
fn contention_atoms(topo: &Topology, n: usize) -> Result<Vec<usize>, ExecError> {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut chan_rep: HashMap<ChannelId, usize> = HashMap::new();
    for g in 0..n {
        for (src, dst) in [
            (Endpoint::Host, Endpoint::Gpu(g)),
            (Endpoint::Gpu(g), Endpoint::Host),
        ] {
            for &c in topo.route(src, dst)? {
                match chan_rep.get(&c) {
                    Some(&o) => {
                        let (a, b) = (find(&mut parent, g), find(&mut parent, o));
                        parent[a.max(b)] = a.min(b);
                    }
                    None => {
                        chan_rep.insert(c, g);
                    }
                }
            }
        }
    }
    let mut atom_of_root: HashMap<usize, usize> = HashMap::new();
    let mut atoms = Vec::with_capacity(n);
    for g in 0..n {
        let r = find(&mut parent, g);
        let next = atom_of_root.len();
        atoms.push(*atom_of_root.entry(r).or_insert(next));
    }
    Ok(atoms)
}

/// The unsharded fallback, configured exactly as the harness configures a
/// plain executor — so clamped runs are bit-for-bit ordinary runs.
fn run_unsharded(
    topo: &Topology,
    model: &ModelSpec,
    plan: &ExecutionPlan,
    cfg: &ShardRunConfig<'_>,
) -> Result<(RunSummary, Trace, ShardReport), ExecError> {
    let mut exec = SimExecutor::with_iterations(topo, model, plan, cfg.iterations)?;
    exec.inject_faults(cfg.faults)?;
    if let Some(seed) = cfg.resilience {
        exec.enable_resilience(seed);
    }
    let (summary, trace, counters) = exec.run_counted()?;
    Ok((
        summary,
        trace,
        ShardReport {
            shards_used: 1,
            counters,
        },
    ))
}

/// Runs `plan` sharded across `cfg.shards` threads of the
/// `harmony-parallel` pool and merges the result; byte-identical to
/// [`SimExecutor::run_counted`] on the same inputs (trace and summary;
/// see module docs). Errors reproduce the unsharded run's first failure:
/// shards report the virtual time they failed at and the earliest
/// `(time, shard)` wins, which is the unsharded order because shard state
/// is identical to the whole run up to that instant.
///
/// Plans that are not replica-aligned (pipeline schemes) are a typed
/// [`ExecError::Plan`] when `cfg.shards > 1` — sharding them is not
/// meaningful, and silently falling back would misreport a scaling sweep.
pub fn run_sharded(
    topo: &Topology,
    model: &ModelSpec,
    plan: &ExecutionPlan,
    cfg: &ShardRunConfig<'_>,
) -> Result<(RunSummary, Trace, ShardReport), ExecError> {
    let wall = std::time::Instant::now();
    let n = plan.queues.len();
    // Single shard, trivial plans, or a GPU-count mismatch (let the
    // ordinary constructor produce its own error): no shard machinery —
    // even the rendezvous indirection must not run, so S=1 is exactly
    // the ordinary executor.
    if cfg.shards <= 1 || n <= 1 || n > topo.num_gpus() {
        return run_unsharded(topo, model, plan, cfg);
    }
    plan.validate().map_err(ExecError::Plan)?;
    if !replica_aligned(plan) {
        // Name the offending scheme, not just the plan: sweep harnesses
        // match on it to report *which* scheme was asked to shard.
        return Err(ExecError::Plan(format!(
            "cannot shard scheme `{}` (plan `{}`): queues are not replica-aligned (pipeline schemes share one replica across GPUs)",
            plan.scheme.name, plan.name
        )));
    }
    let atoms = contention_atoms(topo, n)?;
    let num_atoms = atoms.iter().copied().max().map_or(1, |m| m + 1);
    let shards = cfg.shards.min(num_atoms);
    if shards <= 1 {
        return run_unsharded(topo, model, plan, cfg);
    }
    // Contiguous balanced grouping of atoms onto shards.
    let (base, rem) = (num_atoms / shards, num_atoms % shards);
    let mut atom_shard = vec![0usize; num_atoms];
    let mut next = 0;
    for (s, slot) in (0..shards).map(|s| (s, base + usize::from(s < rem))) {
        for a in &mut atom_shard[next..next + slot] {
            *a = s;
        }
        next += slot;
    }
    let lane_owner: Vec<usize> = atoms.iter().map(|&a| atom_shard[a]).collect();
    // Channel ownership follows the lane owner of the GPU whose host
    // routes use the channel (consistent within an atom by construction);
    // channels outside every host route carry only ring-hop traffic,
    // which every shard simulates identically, so the merge's shard-0
    // default for them is exact.
    let mut channel_owner: BTreeMap<String, usize> = BTreeMap::new();
    for (g, &owner) in lane_owner.iter().enumerate() {
        for (src, dst) in [
            (Endpoint::Host, Endpoint::Gpu(g)),
            (Endpoint::Gpu(g), Endpoint::Host),
        ] {
            for &c in topo.route(src, dst)? {
                channel_owner.insert(topo.channels()[c].name.clone(), owner);
            }
        }
    }
    // Every shard runs the FULL plan — foreign lanes are simply never
    // woken (the executor's `wake`/`advance` skip them). Emptying foreign
    // queues instead would change the future-use table the eviction
    // policy reads (its per-key runs are filled queue-major across *all*
    // queues, and AllReduce items contribute entries for every replica),
    // silently shifting next-use hints and with them victim choice.
    let barrier = Arc::new(ShardBarrier::new(shards));
    let tasks: Vec<_> = (0..shards)
        .map(|s| {
            let barrier = Arc::clone(&barrier);
            let local: Vec<bool> = lane_owner.iter().map(|&o| o == s).collect();
            let local_n = local.iter().filter(|&&b| b).count();
            let cfg = *cfg;
            move || {
                // A panicking shard must release its peers, not strand
                // them mid-rendezvous; `join_all` then re-raises the
                // panic after every thread has been joined.
                struct PoisonOnPanic(Arc<ShardBarrier>);
                impl Drop for PoisonOnPanic {
                    fn drop(&mut self) {
                        if std::thread::panicking() {
                            self.0.poison("peer shard panicked");
                        }
                    }
                }
                let _guard = PoisonOnPanic(Arc::clone(&barrier));
                let run = || -> Result<(RunSummary, Trace, ExecCounters), (f64, ExecError)> {
                    let mut exec =
                        SimExecutor::with_iterations_unchecked(topo, model, plan, cfg.iterations)
                            .map_err(|e| (0.0, e))?;
                    exec.inject_faults(cfg.faults).map_err(|e| (0.0, e))?;
                    if let Some(seed) = cfg.resilience {
                        exec.enable_resilience(seed);
                    }
                    exec.set_shard_ctx(ShardCtx {
                        barrier: Arc::clone(&barrier),
                        local,
                        local_n,
                        shard_index: s,
                    });
                    exec.run_core().map_err(|e| (exec.sim_now(), e))?;
                    let summary = exec.build_summary(0.0);
                    let (trace, counters) = exec.take_parts();
                    Ok((summary, trace, counters))
                };
                match run() {
                    Ok(parts) => ShardOut::Done(Box::new(parts)),
                    Err((_, ExecError::ShardAborted(_))) => ShardOut::PeerAborted,
                    Err((at, error)) => {
                        barrier.poison(&error.to_string());
                        ShardOut::Failed { at, error }
                    }
                }
            }
        })
        .collect();
    let outs = harmony_parallel::join_all(tasks);
    // Earliest failure in (virtual time, shard index) order is the error
    // the unsharded run would have hit first.
    let mut failed: Option<(f64, ExecError)> = None;
    let mut parts: Vec<(RunSummary, Trace, ExecCounters)> = Vec::new();
    for out in outs {
        match out {
            ShardOut::Done(b) => parts.push(*b),
            ShardOut::PeerAborted => {}
            ShardOut::Failed { at, error } => {
                if failed.as_ref().is_none_or(|(t, _)| at.total_cmp(t).is_lt()) {
                    failed = Some((at, error));
                }
            }
        }
    }
    if let Some((_, e)) = failed {
        return Err(e);
    }
    if parts.len() != shards {
        return Err(ExecError::Plan(
            "internal: shard aborted without a failing peer".to_string(),
        ));
    }
    let spec = MergeSpec {
        lane_owner,
        channel_owner,
    };
    let mut summaries = Vec::with_capacity(parts.len());
    let mut traces = Vec::with_capacity(parts.len());
    let mut counters = ExecCounters::default();
    for (s, t, c) in parts {
        summaries.push(s);
        traces.push(t);
        counters.advance_calls += c.advance_calls;
        counters.wake_set_hits += c.wake_set_hits;
        counters.spurious_wakes += c.spurious_wakes;
        counters.label_interns += c.label_interns;
        counters.slab_high_water = counters.slab_high_water.max(c.slab_high_water);
        counters.slab_fresh_allocs += c.slab_fresh_allocs;
    }
    let mut summary = merge_summaries(&summaries, &spec);
    let trace = merge_traces(&traces, &spec);
    summary.elapsed_secs = wall.elapsed().as_secs_f64();
    Ok((
        summary,
        trace,
        ShardReport {
            shards_used: shards,
            counters,
        },
    ))
}
