//! The simulation executor: runs any [`ExecutionPlan`] on the
//! discrete-event simulator with full memory virtualization.
//!
//! The executor is deliberately *scheme-agnostic*: Harmony and the
//! baselines run through the identical code path, so every reported
//! difference (swap volume, throughput, imbalance) is emergent from the
//! plan's task order, the scheme knobs in [`crate::SchemeConfig`], and the
//! eviction policy — never hard-coded.
//!
//! ## Per-GPU step state machine
//!
//! Each GPU works through its queue one item at a time:
//!
//! 1. **WaitDeps** — a task runs only when its graph dependencies are done
//!    (just-in-time readiness, crossing GPUs in pipeline schemes).
//! 2. **Fetch** — every tensor in the task's swap-in set (Fig 5a) is made
//!    resident and pinned: already-resident tensors are pinned directly;
//!    host tensors are swapped in (after planning evictions); tensors on a
//!    peer GPU move p2p when the scheme allows, otherwise they bounce
//!    through host memory as two swaps (§2 inefficiency 3). Output tensors
//!    are allocated (evicting as needed).
//! 3. **Compute** — the kernel occupies the GPU for `flops / gpu_flops`
//!    seconds.
//! 4. **Retire** — written tensors are marked dirty, the task's dead
//!    tensors are freed (no writeback), pins drop, dependents wake.
//!
//! Evictions honour the scheme's cleanliness tracking: clean, host-backed
//! tensors are dropped for free when `clean_drop` is set (Harmony), and
//! written back otherwise (baseline LMS-style virtualization).
//!
//! ## Prefetch (double-buffering)
//!
//! With [`crate::SchemeConfig::prefetch`] set, a GPU overlaps the *next*
//! queue item's fetches with the current kernel (the paper's §4 trade-off:
//! "prefetching and overlapping data copies for a microbatch with compute
//! for another ... requires a form of double buffering"). The prefetched
//! step's tensors are pinned as they arrive — the double-buffer memory
//! cost is real and can make tight configurations infeasible, which is
//! exactly the trade-off the ablation bench measures. Prefetch only
//! starts once the next item's dependencies are already satisfied, and
//! never crosses an AllReduce barrier.
//!
//! `AllReduce` items synchronise all GPUs (gradient reduction for data
//! parallelism): each GPU pins its local gradient shard; when the last GPU
//! arrives, ring-exchange transfers of `2(N−1)/N · |dW|` per GPU are
//! issued over the p2p routes.
//!
//! ## Wake-set event loop (O(affected) per event)
//!
//! The reference semantics are *dense*: after every simulator event, every
//! GPU is advanced once, in ascending order (one "pass"). An `advance` on
//! a GPU whose blocking condition has not changed is a no-op, so the
//! production loop only advances the GPUs an event can actually unblock:
//!
//! * a completion wakes the GPU that owns it (transfer purpose / compute
//!   lane);
//! * `done`-set insertions wake dependency waiters via a per-`(iter,
//!   replica, task)` index, registered when `deps_ready` fails;
//! * tensor state changes (move settled, unpin, free) wake fetch-stall
//!   waiters via a per-tensor index, registered where `process_targets`
//!   stalls;
//! * collective completion and fault application wake every GPU;
//! * a GPU whose prefetch attempt was *cancelled* (the opportunistic
//!   double-buffer fallback, which re-touches tensors on every retry) is
//!   polled every pass until the retry resolves — exactly the dense
//!   cadence, so LRU recency stays bit-identical.
//!
//! Wakes produced *during* a pass for a GPU above the one currently
//! advancing join the same pass (dense visibility order); wakes at or
//! below it are deferred to the next event's pass, and are dropped if the
//! event queue runs dry — matching dense stuck detection. The
//! `dense_advance` feature exposes the reference mode
//! ([`SimExecutor::use_dense_advance`]), which delegates to the frozen
//! pre-rewrite executor; the harness proves both modes produce
//! byte-identical traces and summaries, and [`ExecCounters`] pins the
//! structural claims (no O(N_gpus) rescan per event, no per-event heap
//! allocation).
//!
//! ## Data layout (DESIGN §11)
//!
//! The per-event path touches no keyed container and performs no
//! steady-state heap allocation:
//!
//! * **Dense key arena** — logical tensor keys `(iter, replica, ref)` map
//!   to indices in a [`KeySpace`]; tensor ids, next-use cursors, and
//!   future-use sequences live in flat parallel arrays indexed by key.
//! * **Struct-of-arrays step state** — the current and prefetch step of
//!   every GPU are planes of parallel vectors ([`StepPlane`]); fetch
//!   targets are precompiled per queue item into one shared arena and
//!   walked by cursor.
//! * **Generational slab** — pending transfers live in a
//!   [`crate::slab::Slab`]; the packed [`crate::slab::SlabHandle`] rides
//!   the simulator's completion tag, so the completion path is a
//!   bounds-checked array index with a typed use-after-free check instead
//!   of a hash probe.
//! * **Batched wake words** — wake/poll/pass sets are `u64` bitmask words;
//!   all wakes of one timestamp coalesce into the words and drain in a
//!   single ascending bit-scan.
//! * **Pooled payloads** — route vectors for observer events come from a
//!   reusable [`crate::obs::EventPool`]; trace spans stamp pre-interned
//!   [`SymbolId`]s; routes and their simulator flight classes are cached
//!   per (endpoint, endpoint) pair.

use std::collections::{BTreeSet, HashMap, HashSet};

use harmony_memory::{
    EvictionPolicy, Lru, MemError, MemObserver, MemoryManager, NextUseAware, Residency, TensorId,
};
use harmony_models::ModelSpec;
use harmony_simulator::{Completion, SimError, Simulator, TransferId};
use harmony_taskgraph::{TaskId, TensorRef};
use harmony_topology::{ChannelId, Endpoint, Topology, TopologyError};
use harmony_trace::{
    summary::{ResilienceMode, ResilienceOutcome, RunSummary},
    SpanKind, SymbolId, Trace,
};

use crate::config::PolicyKind;
use crate::obs::{EventPool, ExecContext, ExecEvent, ExecObserver, Fault, TimedFault};
use crate::plan::{ExecutionPlan, WorkItem};
use crate::slab::{Slab, SlabHandle};

/// Errors from plan execution.
#[derive(Debug)]
pub enum ExecError {
    /// Memory-management failure (e.g. a single task's working set exceeds
    /// device capacity).
    Mem(MemError),
    /// Simulator failure.
    Sim(SimError),
    /// Topology routing failure.
    Topo(TopologyError),
    /// Plan/graph inconsistency.
    Plan(String),
    /// No progress possible but work remains (scheduling deadlock).
    Stuck(String),
    /// A generational slab handle failed to resolve (stale, vacant, or
    /// out of bounds) — the typed use-after-free check on pooled records.
    Slab(crate::slab::SlabError),
    /// A peer shard of a sharded run failed, cutting this shard's barrier
    /// wait short. Internal to [`crate::shard::run_sharded`], which
    /// replaces it with the failing peer's own error — it never surfaces.
    ShardAborted(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Mem(e) => write!(f, "memory: {e}"),
            ExecError::Sim(e) => write!(f, "simulator: {e}"),
            ExecError::Topo(e) => write!(f, "topology: {e}"),
            ExecError::Plan(m) => write!(f, "plan: {m}"),
            ExecError::Stuck(m) => write!(f, "stuck: {m}"),
            ExecError::Slab(e) => write!(f, "slab: {e}"),
            ExecError::ShardAborted(m) => write!(f, "shard aborted: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<MemError> for ExecError {
    fn from(e: MemError) -> Self {
        ExecError::Mem(e)
    }
}
impl From<SimError> for ExecError {
    fn from(e: SimError) -> Self {
        ExecError::Sim(e)
    }
}
impl From<TopologyError> for ExecError {
    fn from(e: TopologyError) -> Self {
        ExecError::Topo(e)
    }
}
impl From<crate::slab::SlabError> for ExecError {
    fn from(e: crate::slab::SlabError) -> Self {
        ExecError::Slab(e)
    }
}

/// Logical tensor key: (iteration, replica, reference).
///
/// Persistent state (weights, gradient buffers, optimizer state) uses
/// iteration 0 regardless of when it is touched — one instance lives across
/// the whole run. Transients (activations, stashes, act-grads, inputs) are
/// distinct per iteration so consecutive iterations can overlap across GPUs
/// without aliasing.
type Key = (u32, usize, TensorRef);

/// Builds the key for `rf` touched during iteration `iter`.
fn key_of(iter: u32, replica: usize, rf: TensorRef) -> Key {
    let persistent = matches!(
        rf,
        TensorRef::Weight { .. } | TensorRef::Grad { .. } | TensorRef::OptState { .. }
    );
    (if persistent { 0 } else { iter }, replica, rf)
}

/// Dense index space over logical tensor keys. Every `(iter, replica,
/// ref)` the plan can touch maps to a unique flat index, so tensor ids,
/// next-use cursors and future-use sequences live in parallel arrays
/// instead of a `HashMap<Key, _>` probed per event. Dimensions come from
/// the model/config plus a defensive scan of the graph (`ref_dims`), so a
/// graph referencing out-of-config indices still fits.
#[derive(Debug, Clone, Copy)]
struct KeySpace {
    /// Exclusive layer bound `L`.
    layers: usize,
    /// Exclusive microbatch bound `U`.
    ubatches: usize,
    /// Replica slots (covers both plan replicas and GPU-indexed replicas).
    rslots: usize,
    /// Refs per (iter, replica) plane: `3L + 4LU + U`.
    num_refs: usize,
}

impl KeySpace {
    /// Flat index of `rf` within one (iter, replica) plane.
    fn ref_ix(&self, rf: TensorRef) -> usize {
        let l3 = 3 * self.layers;
        let lu = self.layers * self.ubatches;
        match rf {
            TensorRef::Weight { layer } => layer,
            TensorRef::Grad { layer } => self.layers + layer,
            TensorRef::OptState { layer } => 2 * self.layers + layer,
            TensorRef::Activation { layer, ubatch } => l3 + layer * self.ubatches + ubatch,
            TensorRef::ActGrad { layer, ubatch } => l3 + lu + layer * self.ubatches + ubatch,
            TensorRef::Stash { layer, ubatch } => l3 + 2 * lu + layer * self.ubatches + ubatch,
            TensorRef::WeightStash { layer, ubatch } => {
                l3 + 3 * lu + layer * self.ubatches + ubatch
            }
            TensorRef::Input { ubatch } => l3 + 4 * lu + ubatch,
        }
    }

    /// Flat index of a key, collapsing persistent refs to iteration 0
    /// (mirrors [`key_of`]).
    fn key_ix(&self, iter: u32, replica: usize, rf: TensorRef) -> usize {
        let persistent = matches!(
            rf,
            TensorRef::Weight { .. } | TensorRef::Grad { .. } | TensorRef::OptState { .. }
        );
        let it = if persistent { 0 } else { iter as usize };
        (it * self.rslots + replica) * self.num_refs + self.ref_ix(rf)
    }
}

/// Fetch-target formatting shim: stuck-state diagnostics print targets in
/// the same `Input(key)` / `Alloc(key)` form the reference executor uses.
#[derive(Debug, Clone, Copy)]
enum Target {
    /// Make an existing tensor resident and pin it.
    // The key is read only through the derived `Debug` impl.
    Input(#[allow(dead_code)] Key),
    /// Allocate a fresh output tensor on this GPU and pin it.
    Alloc(#[allow(dead_code)] Key),
}

/// A precompiled fetch target: iteration-independent, shared by every
/// iteration's instance of its queue item. The full key index is
/// `KeySpace::key_ix(step_iter, replica, rf)` at use time.
#[derive(Debug, Clone, Copy)]
struct CTarget {
    rf: TensorRef,
    replica: u32,
    /// Allocate-and-pin (task output) rather than fetch-and-pin (input).
    alloc: bool,
}

/// One flattened queue entry (arena replaces the per-GPU `VecDeque`).
#[derive(Debug, Clone, Copy)]
struct QItem {
    seq: u64,
    iter: u32,
    item: WorkItem,
    /// Precompiled target range in the shared target arena.
    t_start: u32,
    t_end: u32,
}

#[derive(Debug, Clone, Copy)]
enum InFlight {
    /// Ready to process the next fetch target (or start compute).
    Idle,
    /// Waiting for `remaining` eviction writebacks to free room.
    Evicting {
        /// In-flight eviction transfers still outstanding.
        remaining: u32,
    },
    /// Waiting for the current target's swap-in / p2p move.
    Moving,
    /// Waiting for a needed tensor to finish leaving a peer GPU (host
    /// bounce path when p2p is disabled).
    WaitDemote,
    /// Kernel submitted.
    Computing,
    /// Arrived at an AllReduce barrier.
    Collective,
}

/// Struct-of-arrays step state for one slot plane (current or prefetch):
/// `advance` reads only the lanes it needs instead of pulling a whole
/// `Step` struct (plus its heap-owned target deque) through the cache.
/// `pinned[g]` is reused across steps — cleared on retire, never
/// deallocated — so steady-state stepping allocates nothing.
#[derive(Debug)]
struct StepPlane {
    live: Vec<bool>,
    id: Vec<u64>,
    seq: Vec<u64>,
    iter: Vec<u32>,
    item: Vec<WorkItem>,
    t_cur: Vec<u32>,
    t_end: Vec<u32>,
    targets_built: Vec<bool>,
    /// The front target was an `Alloc` converted in place to an input
    /// fetch (idempotent re-materialisation after a cancelled prefetch).
    front_converted: Vec<bool>,
    inflight: Vec<InFlight>,
    pinned: Vec<Vec<TensorId>>,
}

impl StepPlane {
    fn new(n: usize) -> Self {
        StepPlane {
            live: vec![false; n],
            id: vec![0; n],
            seq: vec![0; n],
            iter: vec![0; n],
            item: vec![WorkItem::AllReduce { pack: 0 }; n],
            t_cur: vec![0; n],
            t_end: vec![0; n],
            targets_built: vec![false; n],
            front_converted: vec![false; n],
            inflight: vec![InFlight::Idle; n],
            pinned: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// Returns the plane to the exact `StepPlane::new(n)` state while
    /// keeping every lane's capacity (including the per-GPU pin lists) —
    /// the pooled-run recycling contract. A cleared-and-refilled lane
    /// holds the same values as a freshly allocated one, so recycled
    /// planes are byte-indistinguishable from fresh ones.
    fn reset(&mut self, n: usize) {
        self.live.clear();
        self.live.resize(n, false);
        self.id.clear();
        self.id.resize(n, 0);
        self.seq.clear();
        self.seq.resize(n, 0);
        self.iter.clear();
        self.iter.resize(n, 0);
        self.item.clear();
        self.item.resize(n, WorkItem::AllReduce { pack: 0 });
        self.t_cur.clear();
        self.t_cur.resize(n, 0);
        self.t_end.clear();
        self.t_end.resize(n, 0);
        self.targets_built.clear();
        self.targets_built.resize(n, false);
        self.front_converted.clear();
        self.front_converted.resize(n, false);
        self.inflight.clear();
        self.inflight.resize(n, InFlight::Idle);
        for p in &mut self.pinned {
            p.clear();
        }
        self.pinned.resize_with(n, Vec::new);
    }
}

impl Default for StepPlane {
    fn default() -> Self {
        StepPlane::new(0)
    }
}

/// A pooled record of an in-flight transfer. Lives in the executor's
/// generational slab; the packed slab handle rides the simulator's
/// completion tag, so resolution is an index, not a hash probe.
#[derive(Debug, Clone)]
struct PendingTransfer {
    /// The simulator's transfer id (for cancellation).
    xfer: TransferId,
    purpose: Purpose,
    start: f64,
    lane: usize,
    kind: SpanKind,
    label: SymbolId,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Purpose {
    /// Writeback of an eviction victim for step `step` on `gpu`.
    Eviction {
        gpu: usize,
        step: u64,
        tensor: TensorId,
    },
    /// The needed tensor itself leaving a peer device (host bounce).
    Demote {
        gpu: usize,
        step: u64,
        tensor: TensorId,
    },
    /// Swap-in or p2p move completing a fetch of step `step` on `gpu`.
    Move {
        gpu: usize,
        step: u64,
        tensor: TensorId,
    },
    /// One ring hop of an AllReduce.
    Collective { iter: u32, pack: usize },
    /// End-of-iteration writeback of dirty persistent state.
    Flush { tensor: TensorId },
}

/// Barrier state of one (iteration, pack) AllReduce, in a flat slot
/// (index `iter * num_packs + pack`) instead of a keyed map. Reset to
/// inactive when the collective finishes, so a straggling completion hits
/// the same "unknown collective" error the reference raises.
#[derive(Debug, Clone, Copy, Default)]
struct CollSlot {
    active: bool,
    arrived: u32,
    outstanding: u32,
}

/// The single outstanding kernel of a GPU (at most one per GPU, so a
/// per-GPU slot replaces the tag-keyed map; the globally sequential tag
/// is kept for cross-checking the simulator's completion).
#[derive(Debug, Clone, Copy)]
struct ComputeRec {
    tag: u64,
    start: f64,
    label: SymbolId,
}

/// Structural counters of the executor's event loop — the complexity
/// contract of the wake-set scheduler, exposed via
/// [`SimExecutor::run_counted`].
///
/// In dense-reference mode `advance_calls` is exactly
/// `num_gpus × (passes)`; in wake-set mode it must track the number of
/// *affected* GPUs per event instead. `wake_set_hits` counts advances
/// that made progress (mutated executor state), `spurious_wakes` the
/// no-op remainder. `label_interns` counts label-symbol interning calls —
/// bounded by the number of *distinct* labels (plan-sized), never by
/// event count. `slab_high_water` / `slab_fresh_allocs` pin the
/// allocation contract: slots ever grown must equal the peak of
/// concurrently live records (plan-bounded), never track event count —
/// steady-state completions recycle slots instead of allocating.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Total `advance` invocations across the run.
    pub advance_calls: u64,
    /// Advances that mutated executor state (the wake was productive).
    pub wake_set_hits: u64,
    /// Advances that were no-ops (over-approximation of the wake set).
    pub spurious_wakes: u64,
    /// Trace-label interning calls (cache misses only).
    pub label_interns: u64,
    /// Peak concurrently live pooled transfer records (plan-bounded).
    /// Zero in dense-reference mode (the frozen loop predates the slab).
    pub slab_high_water: u64,
    /// Transfer-slab slots ever grown. Equals `slab_high_water` when the
    /// steady-state path recycles instead of allocating (the structural
    /// zero-per-event-allocation claim); diverging from it — or growing
    /// with event count — is a pooling regression.
    pub slab_fresh_allocs: u64,
}

/// Which step slot of a GPU is being driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Current,
    Prefetch,
}

/// A cached route between two endpoints plus its lazily registered
/// simulator flight class. The class is registered at the first
/// *non-zero-byte* transfer over the route — exactly when the reference
/// path's `start_transfer` would create it — so flight-class ordering
/// stays bit-identical.
#[derive(Debug)]
struct RouteEntry {
    route: Vec<ChannelId>,
    class: Option<usize>,
}

/// Which cached route a transfer uses.
#[derive(Debug, Clone, Copy)]
enum RouteSel {
    HostToGpu(usize),
    GpuToHost(usize),
    P2p(usize, usize),
}

/// Timer tags at or above this bias belong to resilience retry timers;
/// below it they are injected-fault timers (tag = index into `faults`).
/// Far below the simulator's 2^62 tag ceiling, far above any fault count.
const RETRY_TAG_BIAS: u64 = 1 << 48;

/// Sharded-run control timers (DESIGN §12) occupy `[2^47, 2^48)`: below
/// the retry band, far above any fault index. `SHARD_SYNC_TAG` itself is
/// the inert final-rendezvous tick that advances a shard's clock to the
/// global drain time before the flush; tags above it are collective GO
/// timers, `SHARD_GO_TAG_BIAS + collective index`.
const SHARD_SYNC_TAG: u64 = 1 << 47;
const SHARD_GO_TAG_BIAS: u64 = (1 << 47) + 1;

/// Base delay of the seeded exponential backoff (virtual seconds). Small
/// relative to typical transfer times so the first retry lands promptly.
const RETRY_BASE_SECS: f64 = 2e-5;

/// Spill retries before escalating to a UVM-style capacity overcommit.
const MAX_SPILL_ATTEMPTS: u32 = 3;

/// A link whose bandwidth fault factor drops below this threshold is
/// treated as degraded: in-flight p2p moves over it are cancelled and new
/// fetches take the host-bounce path until it recovers.
const DEGRADED_FACTOR: f64 = 0.5;

/// Pressure-spill state of a GPU's *current* step: a post-fault capacity
/// shortfall being handled by evict-and-retry instead of aborting.
#[derive(Debug, Clone, Copy)]
struct SpillState {
    /// Step that spilled; stale timers for older steps are ignored.
    step_id: u64,
    /// Retry timers fired so far (resets after an overcommit escalation).
    attempts: u32,
    /// A retry timer is scheduled and has not fired yet.
    timer_pending: bool,
    /// Bytes the most recent failed attempt needed free.
    needed: u64,
}

/// What a fired resilience retry timer should do.
#[derive(Debug, Clone, Copy)]
enum RetryKind {
    /// Re-attempt the spilled fetch of step `step` on `gpu`.
    Spill { gpu: usize, step: u64 },
    /// Flip step `step` on `gpu` from Moving back to Idle so the cancelled
    /// p2p fetch is re-attempted (host bounce while the route is degraded).
    Reroute { gpu: usize, step: u64 },
}

/// SplitMix64 step for backoff jitter — self-contained so the scheduler
/// does not grow an RNG dependency.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Executes one iteration of an [`ExecutionPlan`] on a topology. See
/// module docs.
pub struct SimExecutor<'a> {
    topo: &'a Topology,
    model: &'a ModelSpec,
    plan: &'a ExecutionPlan,
    sim: Simulator,
    mm: MemoryManager,
    policy: Box<dyn EvictionPolicy>,
    /// Dense key-index space (see [`KeySpace`]).
    ks: KeySpace,
    iterations: u32,
    num_tasks: usize,
    num_packs: usize,
    /// Tensor id per key index (None until materialised).
    ids: Vec<Option<TensorId>>,
    /// Interned trace label per tensor, dense by `TensorId` (ids are
    /// handed out sequentially by the memory manager).
    labels: Vec<SymbolId>,
    /// Interned compute labels, indexed `replica * num_tasks + task`.
    task_syms: Vec<Option<SymbolId>>,
    /// Future-use arena: per key index, the run `nu_seqs[start..end)` with
    /// a consume cursor (replaces per-key `VecDeque`s).
    nu_start: Vec<u32>,
    nu_end: Vec<u32>,
    nu_cur: Vec<u32>,
    nu_seqs: Vec<u64>,
    /// Flattened per-GPU work queues (arena + cursor per GPU).
    q_items: Vec<QItem>,
    q_bounds: Vec<(u32, u32)>,
    q_cursor: Vec<u32>,
    /// Precompiled fetch targets, ranged into by [`QItem`]s.
    ct_items: Vec<CTarget>,
    /// Current / prefetch step planes (struct-of-arrays).
    cur: StepPlane,
    pre: StepPlane,
    next_step_id: u64,
    /// Pooled in-flight transfer records; handles ride simulator tags.
    transfers: Slab<PendingTransfer>,
    /// The single outstanding kernel per GPU.
    computes: Vec<Option<ComputeRec>>,
    next_compute_tag: u64,
    /// AllReduce barrier slots, indexed `iter * num_packs + pack`.
    collectives: Vec<CollSlot>,
    /// Completed-task bitset, bit index = dep_ix(iter, replica, task).
    done_words: Vec<u64>,
    /// Keyed mirror of the done set, maintained only while observers are
    /// attached (it backs [`ExecContext::done`]).
    done_mirror: HashSet<(u32, usize, TaskId)>,
    /// Words per GPU-bitmask (`ceil(num_queues / 64)`).
    wpg: usize,
    /// Dependency waiters: `wpg` words per (iter, replica, task) entry.
    dep_w: Vec<u64>,
    dep_live: u64,
    /// Tensor waiters: `wpg` words per tensor id, grown lazily.
    tw: Vec<u64>,
    tw_live: u64,
    /// Wake bitmask words: the in-flight pass, wakes deferred to the next
    /// pass, and the every-pass poll set.
    pass_w: Vec<u64>,
    pending_w: Vec<u64>,
    poll_w: Vec<u64>,
    /// GPU currently being advanced inside a pass (None outside passes).
    advancing: Option<usize>,
    /// Bumped at every executor state change; advance snapshots it to
    /// classify wakes as productive or spurious.
    mutations: u64,
    counters: ExecCounters,
    trace: Trace,
    observers: Vec<Box<dyn ExecObserver>>,
    /// Reusable payload buffers for observer events.
    event_pool: EventPool,
    faults: Vec<TimedFault>,
    /// Per-GPU compute-rate multiplier (1.0 nominal), set by jitter faults.
    compute_rate: Vec<f64>,
    /// Fail with [`ExecError::Stuck`] after this many simulator events.
    event_budget: Option<u64>,
    events_processed: u64,
    /// Sharded-run context (None = ordinary whole-run executor). See
    /// [`crate::shard`] and DESIGN §12.
    shard: Option<crate::shard::ShardCtx>,
    /// Completions this shard processed that the unsharded run would not
    /// attribute to it: peer-lane collective hops, fault timers on shards
    /// other than 0, and the GO/sync control timers (which do not exist
    /// unsharded). Subtracted from the summary's `events_processed` so
    /// the per-shard counts sum to the unsharded total.
    shard_foreign_events: u64,
    /// Cached routes (and lazily registered flight classes) per endpoint
    /// pair: host→GPU, GPU→host, and GPU→GPU (`src * n_topo + dst`).
    routes_h2g: Vec<Option<RouteEntry>>,
    routes_g2h: Vec<Option<RouteEntry>>,
    routes_p2p: Vec<Option<RouteEntry>>,
    n_topo: usize,
    /// Dense-reference mode: delegate to the frozen reference executor.
    #[cfg(feature = "dense_advance")]
    dense: bool,
    /// Graceful-degradation layer (DESIGN §10): when armed, post-fault
    /// capacity shortfalls spill-and-retry instead of aborting, and p2p
    /// fetches reroute off degraded links. Off by default.
    resilience: bool,
    /// Seed for the deterministic backoff jitter.
    resilience_seed: u64,
    /// Set once the first injected fault applies — the gate that keeps
    /// the resilience layer byte-invisible on clean (and pre-fault) paths.
    fault_applied: bool,
    /// Channels currently degraded below [`DEGRADED_FACTOR`].
    degraded_channels: BTreeSet<ChannelId>,
    /// Per-GPU pressure-spill state (current step only).
    spills: Vec<Option<SpillState>>,
    /// Metadata of scheduled retry timers, indexed by tag − RETRY_TAG_BIAS.
    retry_meta: Vec<RetryKind>,
    /// Reroutes per tensor, so backoff grows across repeated link faults.
    reroute_attempts: HashMap<TensorId, u32>,
    /// Counters reported as the summary's [`ResilienceOutcome`].
    res_outcome: ResilienceOutcome,
    /// Reusable victim buffer for `plan_fetch_into`/`make_room_into`, so
    /// the per-fetch planning path allocates nothing (DESIGN §13).
    evict_scratch: Vec<TensorId>,
    /// Sabotage: silently skip the next tensor-waiter registration.
    #[cfg(feature = "mutation_hooks")]
    drop_one_wake: bool,
    /// Sabotage: flip a generation bit on the next transfer completion.
    #[cfg(feature = "mutation_hooks")]
    corrupt_one_gen: bool,
    /// Wall-clock seconds spent constructing this executor (arenas,
    /// registration, queue compilation), plus any planning time added via
    /// [`SimExecutor::add_setup_secs`]. Exported as the summary's
    /// `setup_secs`.
    setup_secs: f64,
}

/// Recyclable heap state for pooled executor construction (DESIGN §14).
///
/// [`SimExecutor::pooled`] draws every owned container from the pool
/// instead of allocating, and [`SimExecutor::run_pooled`] hands them back
/// afterwards — on success *and* on error, so failed sweep cells recycle
/// too. A default (empty) pool vends empty containers, which makes the
/// pooled build path *literally* the fresh build path:
/// [`SimExecutor::with_iterations`] constructs through the same code with
/// a throwaway empty pool, so byte-identity of pooled and fresh runs is
/// structural, not incidental.
///
/// Hash-ordered containers whose iteration order could reach an
/// observable output (`done_mirror`, `reroute_attempts`,
/// `degraded_channels`) are deliberately *not* pooled — they are rebuilt
/// fresh per run, as are the policy box, observers, faults and counters.
#[derive(Debug, Default)]
pub struct ExecPool {
    sim: Option<Simulator>,
    mm: Option<MemoryManager>,
    trace: Option<Trace>,
    cur: Option<StepPlane>,
    pre: Option<StepPlane>,
    transfers: Slab<PendingTransfer>,
    event_pool: EventPool,
    ids: Vec<Option<TensorId>>,
    labels: Vec<SymbolId>,
    task_syms: Vec<Option<SymbolId>>,
    nu_count: Vec<u32>,
    nu_start: Vec<u32>,
    nu_end: Vec<u32>,
    nu_cur: Vec<u32>,
    nu_seqs: Vec<u64>,
    q_items: Vec<QItem>,
    q_bounds: Vec<(u32, u32)>,
    q_cursor: Vec<u32>,
    ct_items: Vec<CTarget>,
    computes: Vec<Option<ComputeRec>>,
    collectives: Vec<CollSlot>,
    done_words: Vec<u64>,
    dep_w: Vec<u64>,
    tw: Vec<u64>,
    pass_w: Vec<u64>,
    pending_w: Vec<u64>,
    poll_w: Vec<u64>,
    compute_rate: Vec<f64>,
    routes_h2g: Vec<Option<RouteEntry>>,
    routes_g2h: Vec<Option<RouteEntry>>,
    routes_p2p: Vec<Option<RouteEntry>>,
    spills: Vec<Option<SpillState>>,
    retry_meta: Vec<RetryKind>,
    evict_scratch: Vec<TensorId>,
}

impl ExecPool {
    /// An empty pool. The first pooled run through it behaves exactly like
    /// a fresh run (there is nothing to recycle yet); subsequent runs
    /// reuse its arenas.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a finished run's trace to the pool so the next pooled build
    /// recycles its span arena and interned symbol table.
    /// [`SimExecutor::run_pooled`] hands the trace to the caller (it is
    /// part of the run's output); call this once done reading it.
    pub fn recycle_trace(&mut self, trace: Trace) {
        self.trace = Some(trace);
    }

    /// Sabotage (testing only): arm the pooled memory manager's
    /// leak-one-plane-across-reset mutant, so its next recycled build
    /// keeps the previous run's peak-memory plane. Returns whether a
    /// retained manager was armed (an empty pool has nothing to leak
    /// from). The `reusediff` mutation-catch test uses this to prove the
    /// fresh-vs-pooled differential detects reset leaks.
    #[cfg(feature = "mutation_hooks")]
    pub fn arm_leak_plane_across_reset(&mut self) -> bool {
        match self.mm.as_mut() {
            Some(mm) => {
                mm.arm_leak_plane_across_reset();
                true
            }
            None => false,
        }
    }
}

/// Takes the vector out of its pool slot, cleared and ready to refill.
/// Clearing before reuse is what makes recycling byte-invisible: a
/// cleared-then-refilled vector holds exactly the contents a freshly
/// allocated one would, whatever its capacity.
fn recycled<T>(slot: &mut Vec<T>) -> Vec<T> {
    let mut v = std::mem::take(slot);
    v.clear();
    v
}

impl<'a> SimExecutor<'a> {
    /// Prepares an executor: registers all persistent tensors (weights,
    /// gradient buffers, optimizer state per replica; inputs per
    /// microbatch) in host memory, as a framework would before training.
    pub fn new(
        topo: &'a Topology,
        model: &'a ModelSpec,
        plan: &'a ExecutionPlan,
    ) -> Result<Self, ExecError> {
        Self::with_iterations(topo, model, plan, 1)
    }

    /// Like [`SimExecutor::new`] but replays the plan `iterations` times
    /// back-to-back (fresh inputs and transients each iteration, shared
    /// persistent state). Consecutive iterations pipeline across GPUs,
    /// so the summary's totals divided by `iterations` approach the
    /// steady-state per-iteration figures without cold-start edges.
    pub fn with_iterations(
        topo: &'a Topology,
        model: &'a ModelSpec,
        plan: &'a ExecutionPlan,
        iterations: u32,
    ) -> Result<Self, ExecError> {
        if iterations == 0 {
            return Err(ExecError::Plan("iterations must be positive".to_string()));
        }
        plan.validate().map_err(ExecError::Plan)?;
        Self::with_iterations_unchecked(topo, model, plan, iterations)
    }

    /// [`SimExecutor::with_iterations`] without the plan validation pass.
    /// Only for [`crate::shard`]: a shard's sub-plan is the (validated)
    /// parent plan with foreign queues emptied, which `validate` would
    /// reject as unbalanced even though the parent already passed.
    pub(crate) fn with_iterations_unchecked(
        topo: &'a Topology,
        model: &'a ModelSpec,
        plan: &'a ExecutionPlan,
        iterations: u32,
    ) -> Result<Self, ExecError> {
        // A fresh build is a pooled build that draws from an empty
        // throwaway pool: taking from an empty slot yields an empty
        // container, so one constructor body serves both paths and the
        // pooled path cannot drift from this one.
        Self::build(topo, model, plan, iterations, &mut ExecPool::default())
    }

    /// Like [`SimExecutor::with_iterations`], drawing every owned
    /// container from `pool` instead of allocating (and recycling the
    /// pool's retained simulator, memory manager and trace when present).
    /// Run the result with [`SimExecutor::run_pooled`] to hand the
    /// containers back for the next cell. Byte-identity with the fresh
    /// path is structural: both construct through [`Self::build`]; a
    /// fresh build simply draws from an empty throwaway pool.
    pub fn pooled(
        topo: &'a Topology,
        model: &'a ModelSpec,
        plan: &'a ExecutionPlan,
        iterations: u32,
        pool: &mut ExecPool,
    ) -> Result<Self, ExecError> {
        if iterations == 0 {
            return Err(ExecError::Plan("iterations must be positive".to_string()));
        }
        plan.validate().map_err(ExecError::Plan)?;
        Self::build(topo, model, plan, iterations, pool)
    }

    /// The one constructor body behind both the fresh and pooled paths.
    fn build(
        topo: &'a Topology,
        model: &'a ModelSpec,
        plan: &'a ExecutionPlan,
        iterations: u32,
        pool: &mut ExecPool,
    ) -> Result<Self, ExecError> {
        let setup_start = std::time::Instant::now();
        if iterations == 0 {
            return Err(ExecError::Plan("iterations must be positive".to_string()));
        }
        if plan.queues.len() > topo.num_gpus() {
            return Err(ExecError::Plan(format!(
                "plan uses {} GPUs, topology has {}",
                plan.queues.len(),
                topo.num_gpus()
            )));
        }
        let sim = match pool.sim.take() {
            Some(mut s) => {
                s.reset(topo);
                s
            }
            None => Simulator::new(topo),
        };
        let capacities = (0..topo.num_gpus())
            .map(|g| topo.gpu(g).map(|s| s.mem_bytes))
            .collect::<Result<Vec<_>, _>>()?;
        let mut mm = match pool.mm.take() {
            Some(mut m) => {
                m.reset(capacities);
                m
            }
            None => MemoryManager::new(capacities),
        };
        let cfg = plan.graph.config();
        // Key space: model/config dimensions, widened by a defensive scan
        // of the graph (`ref_dims`) so a graph that references
        // out-of-config layers or microbatches still maps in bounds (the
        // reference executor tolerates those and fails later with a
        // "not materialised" plan error — so must we).
        let (scan_l, scan_u) = plan.ref_dims();
        let layers = model.layers.len().max(scan_l);
        let ubatches = cfg.microbatches.max(scan_u);
        let rslots = plan.replicas.max(plan.queues.len()).max(1);
        let num_refs = 3 * layers + 4 * layers * ubatches + ubatches;
        let ks = KeySpace {
            layers,
            ubatches,
            rslots,
            num_refs,
        };
        let total_keys = iterations as usize * rslots * num_refs;
        let mut ids: Vec<Option<TensorId>> = recycled(&mut pool.ids);
        ids.resize(total_keys, None);
        let mut trace = pool.trace.take().unwrap_or_default();
        trace.reset(plan.name.clone());
        trace.reserve_spans(plan.total_items() * iterations as usize * 4);
        let mut labels: Vec<SymbolId> = recycled(&mut pool.labels);
        let mut counters = ExecCounters::default();
        // Persistent per-replica state. Labels are interned once here —
        // the event loop only ever stamps spans with the symbol.
        let mut register = |mm: &mut MemoryManager,
                            ids: &mut Vec<Option<TensorId>>,
                            iter: u32,
                            replica: usize,
                            rf: TensorRef| {
            let bytes = rf.bytes(model, cfg.ubatch_size, cfg.opt_slots);
            let name = name_of(replica, rf);
            let sym = trace.intern(&name);
            counters.label_interns += 1;
            let id = mm.register_on_host(name, bytes, rf.class());
            debug_assert_eq!(id as usize, labels.len(), "tensor ids must be sequential");
            labels.push(sym);
            ids[ks.key_ix(iter, replica, rf)] = Some(id);
        };
        for r in 0..plan.replicas {
            for l in 0..model.layers.len() {
                for rf in [
                    TensorRef::Weight { layer: l },
                    TensorRef::Grad { layer: l },
                    TensorRef::OptState { layer: l },
                ] {
                    register(&mut mm, &mut ids, 0, r, rf);
                }
            }
            for u in 0..cfg.microbatches {
                for it in 0..iterations {
                    register(&mut mm, &mut ids, it, r, TensorRef::Input { ubatch: u });
                }
            }
        }
        let policy: Box<dyn EvictionPolicy> = match plan.scheme.policy {
            PolicyKind::Lru => Box::new(Lru),
            PolicyKind::NextUseAware => Box::new(NextUseAware),
        };
        // Flatten the work queues and precompile each distinct item's
        // fetch targets once; every iteration's instance shares the range.
        let mut q_items: Vec<QItem> = recycled(&mut pool.q_items);
        let mut ct_items: Vec<CTarget> = recycled(&mut pool.ct_items);
        let mut q_bounds: Vec<(u32, u32)> = recycled(&mut pool.q_bounds);
        q_bounds.reserve(plan.queues.len());
        for (g, q) in plan.queues.iter().enumerate() {
            let ranges: Vec<(u32, u32)> = q
                .iter()
                .map(|item| compile_targets(&mut ct_items, plan, g, *item))
                .collect();
            let start = q_items.len() as u32;
            for it in 0..iterations {
                for (i, item) in q.iter().enumerate() {
                    let (t_start, t_end) = ranges[i];
                    q_items.push(QItem {
                        seq: (it as u64) * q.len() as u64 + i as u64,
                        iter: it,
                        item: *item,
                        t_start,
                        t_end,
                    });
                }
            }
            q_bounds.push((start, q_items.len() as u32));
        }
        // Future-use table for next-use-aware eviction, as flat per-key
        // runs: count, prefix-sum into offsets, then fill — preserving the
        // reference push order exactly (queue-major, not globally sorted).
        let mut nu_count: Vec<u32> = recycled(&mut pool.nu_count);
        nu_count.resize(total_keys, 0);
        for q in &plan.queues {
            for it in 0..iterations {
                for item in q.iter() {
                    for key in item_keys(plan, it, *item) {
                        nu_count[ks.key_ix(key.0, key.1, key.2)] += 1;
                    }
                }
            }
        }
        let mut nu_start: Vec<u32> = recycled(&mut pool.nu_start);
        nu_start.resize(total_keys, 0);
        let mut acc: u32 = 0;
        for k in 0..total_keys {
            nu_start[k] = acc;
            acc += nu_count[k];
        }
        let mut nu_end = recycled(&mut pool.nu_end);
        nu_end.extend_from_slice(&nu_start);
        let mut nu_seqs: Vec<u64> = recycled(&mut pool.nu_seqs);
        nu_seqs.resize(acc as usize, 0);
        for q in &plan.queues {
            for it in 0..iterations {
                for (i, item) in q.iter().enumerate() {
                    let seq = (it as u64) * q.len() as u64 + i as u64;
                    for key in item_keys(plan, it, *item) {
                        let k = ks.key_ix(key.0, key.1, key.2);
                        nu_seqs[nu_end[k] as usize] = seq;
                        nu_end[k] += 1;
                    }
                }
            }
        }
        let mut nu_cur = recycled(&mut pool.nu_cur);
        nu_cur.extend_from_slice(&nu_start);
        // The count table is build-only scratch: hand it straight back.
        nu_count.clear();
        pool.nu_count = nu_count;
        let n_q = plan.queues.len();
        let num_gpus = topo.num_gpus();
        let num_tasks = plan.graph.tasks().len();
        let num_packs = plan.graph.packs().len();
        let wpg = n_q.div_ceil(64).max(1);
        let dep_entries = iterations as usize * rslots * num_tasks;
        let mut q_cursor: Vec<u32> = recycled(&mut pool.q_cursor);
        q_cursor.extend(q_bounds.iter().map(|b| b.0));
        let mut task_syms = recycled(&mut pool.task_syms);
        task_syms.resize(rslots * num_tasks, None);
        let mut cur = pool.cur.take().unwrap_or_default();
        cur.reset(n_q);
        let mut pre = pool.pre.take().unwrap_or_default();
        pre.reset(n_q);
        let mut transfers = std::mem::take(&mut pool.transfers);
        transfers.reset();
        let mut computes = recycled(&mut pool.computes);
        computes.resize(n_q, None);
        let mut collectives = recycled(&mut pool.collectives);
        collectives.resize(iterations as usize * num_packs, CollSlot::default());
        let mut done_words = recycled(&mut pool.done_words);
        done_words.resize(dep_entries.div_ceil(64).max(1), 0);
        let mut dep_w = recycled(&mut pool.dep_w);
        dep_w.resize(dep_entries * wpg, 0);
        let tw = recycled(&mut pool.tw);
        let mut pass_w = recycled(&mut pool.pass_w);
        pass_w.resize(wpg, 0);
        let mut pending_w = recycled(&mut pool.pending_w);
        pending_w.resize(wpg, 0);
        let mut poll_w = recycled(&mut pool.poll_w);
        poll_w.resize(wpg, 0);
        let event_pool = std::mem::take(&mut pool.event_pool);
        let mut compute_rate = recycled(&mut pool.compute_rate);
        compute_rate.resize(num_gpus, 1.0);
        let mut routes_h2g = recycled(&mut pool.routes_h2g);
        routes_h2g.resize_with(num_gpus, || None);
        let mut routes_g2h = recycled(&mut pool.routes_g2h);
        routes_g2h.resize_with(num_gpus, || None);
        let mut routes_p2p = recycled(&mut pool.routes_p2p);
        routes_p2p.resize_with(num_gpus * num_gpus, || None);
        let mut spills = recycled(&mut pool.spills);
        spills.resize(num_gpus, None);
        let retry_meta = recycled(&mut pool.retry_meta);
        let evict_scratch = recycled(&mut pool.evict_scratch);
        Ok(SimExecutor {
            topo,
            model,
            plan,
            sim,
            mm,
            policy,
            ks,
            iterations,
            num_tasks,
            num_packs,
            ids,
            labels,
            task_syms,
            nu_start,
            nu_end,
            nu_cur,
            nu_seqs,
            q_items,
            q_bounds,
            q_cursor,
            ct_items,
            cur,
            pre,
            next_step_id: 0,
            transfers,
            computes,
            next_compute_tag: 0,
            collectives,
            done_words,
            done_mirror: HashSet::new(),
            wpg,
            dep_w,
            dep_live: 0,
            tw,
            tw_live: 0,
            pass_w,
            pending_w,
            poll_w,
            advancing: None,
            mutations: 0,
            counters,
            trace,
            observers: Vec::new(),
            event_pool,
            faults: Vec::new(),
            compute_rate,
            event_budget: None,
            events_processed: 0,
            shard: None,
            shard_foreign_events: 0,
            routes_h2g,
            routes_g2h,
            routes_p2p,
            n_topo: num_gpus,
            #[cfg(feature = "dense_advance")]
            dense: false,
            resilience: false,
            resilience_seed: 0,
            fault_applied: false,
            degraded_channels: BTreeSet::new(),
            spills,
            retry_meta,
            reroute_attempts: HashMap::new(),
            res_outcome: ResilienceOutcome::default(),
            evict_scratch,
            #[cfg(feature = "mutation_hooks")]
            drop_one_wake: false,
            #[cfg(feature = "mutation_hooks")]
            corrupt_one_gen: false,
            setup_secs: setup_start.elapsed().as_secs_f64(),
        })
    }

    /// Arms the resilience layer (DESIGN §10): once any injected fault has
    /// applied, capacity shortfalls on the current step enter pressure-spill
    /// mode (park + seeded-backoff retry, escalating to a UVM-style
    /// overcommit) and p2p fetches over degraded links are cancelled and
    /// rerouted through host memory — instead of aborting the run. `seed`
    /// drives the backoff jitter, so a fixed seed gives a bit-identical
    /// degraded trace. Clean runs are unaffected: every resilience branch
    /// is additionally gated on a fault having fired.
    pub fn enable_resilience(&mut self, seed: u64) {
        self.resilience = true;
        self.resilience_seed = seed;
    }

    /// Switches to the dense-reference event loop: every GPU is
    /// re-advanced after every event, exactly the pre-wake-set semantics
    /// (the run delegates to the frozen pre-rewrite executor). The harness
    /// differential proves this mode and the default wake-set loop produce
    /// byte-identical traces and summaries.
    #[cfg(feature = "dense_advance")]
    pub fn use_dense_advance(&mut self) {
        self.dense = true;
    }

    /// Routes every memory-manager operation through the frozen
    /// pre-rewrite core (`harmony-memory`'s `dense_memory` reference
    /// mode) — the memory analogue of
    /// [`SimExecutor::use_dense_advance`]. The `harness::memdiff`
    /// differential proves this mode and the default SoA/ordered-index
    /// manager produce byte-identical traces and summaries.
    #[cfg(feature = "dense_memory")]
    pub fn use_dense_memory(&mut self) {
        self.mm.convert_to_dense();
    }

    /// Arms a single dropped wake: the next tensor-waiter registration is
    /// silently skipped, exactly the bug class the wake-set loop can have
    /// (a stalled GPU never re-advanced). The execdiff differential must
    /// flag the resulting divergence (a stuck run or a trace mismatch).
    #[cfg(feature = "mutation_hooks")]
    pub fn arm_drop_wake(&mut self) {
        self.drop_one_wake = true;
    }

    /// Arms a single corrupted slab-handle generation: the next transfer
    /// completion has a generation bit of its pooled-record handle
    /// flipped, simulating a use-after-free of the record slot. The
    /// generational index must surface this as a typed
    /// [`ExecError::Slab`] stale-handle error, never a silent misread.
    #[cfg(feature = "mutation_hooks")]
    pub fn arm_corrupt_slab_generation(&mut self) {
        self.corrupt_one_gen = true;
    }

    /// Attaches an executor observer (see [`crate::obs`]). Runs with no
    /// observers pay only an `is_empty` branch per event.
    pub fn attach_observer(&mut self, observer: Box<dyn ExecObserver>) {
        self.observers.push(observer);
    }

    /// Attaches a memory observer to the executor's internal
    /// [`MemoryManager`] (which the executor owns and builds itself).
    pub fn attach_mem_observer(&mut self, observer: Box<dyn MemObserver>) {
        self.mm.attach_observer(observer);
    }

    /// Schedules deterministic faults: each fires as a simulator timer at
    /// its virtual time and perturbs the run when handled. Repeated calls
    /// append. Fault factors must be positive and finite.
    pub fn inject_faults(&mut self, faults: &[TimedFault]) -> Result<(), ExecError> {
        for &tf in faults {
            let factor = match tf.fault {
                Fault::LinkBandwidth { factor, .. }
                | Fault::CapacitySqueeze { factor, .. }
                | Fault::ComputeJitter { factor, .. } => factor,
            };
            if !(factor.is_finite() && factor > 0.0) {
                return Err(ExecError::Plan(format!(
                    "fault factor must be positive and finite, got {factor}"
                )));
            }
            let tag = self.faults.len() as u64;
            self.faults.push(tf);
            self.sim.set_timer(tf.at, tag, 0)?;
        }
        Ok(())
    }

    /// Aborts the run with [`ExecError::Stuck`] once more than `budget`
    /// simulator events have been processed — a watchdog for termination
    /// tests (a deadlock that the idle-queue check cannot see, e.g. a
    /// livelock of retried fetches, cannot run away unnoticed).
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = Some(budget);
    }

    /// Read access to the executor's memory manager (for tests/oracles).
    pub fn memory(&self) -> &MemoryManager {
        &self.mm
    }

    /// Read access to the executor's simulator (for tests/oracles).
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Notifies observers of `event`; no-op (and no allocation) when none
    /// are attached.
    fn emit(&mut self, event: ExecEvent) {
        self.emit_with(|| event);
    }

    /// Like [`Self::emit`], but the event is only *constructed* when an
    /// observer is attached — callers with allocating payloads (route
    /// vectors) pay nothing on unobserved runs.
    fn emit_with(&mut self, make: impl FnOnce() -> ExecEvent) {
        if self.observers.is_empty() {
            return;
        }
        let event = make();
        let mut obs = std::mem::take(&mut self.observers);
        {
            let ctx = ExecContext {
                plan: self.plan,
                mm: &self.mm,
                sim: &self.sim,
                done: &self.done_mirror,
            };
            for o in &mut obs {
                o.on_event(&ctx, &event);
            }
        }
        self.observers = obs;
    }

    /// Emits [`ExecEvent::TransferIssued`] for a transfer just started on
    /// `sel`'s cached route. The route payload comes from (and returns to)
    /// the event pool, so observed runs do not allocate per transfer
    /// either; unobserved runs pay only the `is_empty` branch.
    fn emit_transfer_issued(&mut self, sel: RouteSel, bytes: u64) {
        if self.observers.is_empty() {
            return;
        }
        let mut route = self.event_pool.take_route();
        {
            let entry = match sel {
                RouteSel::HostToGpu(g) => self.routes_h2g[g].as_ref(),
                RouteSel::GpuToHost(g) => self.routes_g2h[g].as_ref(),
                RouteSel::P2p(s, d) => self.routes_p2p[s * self.n_topo + d].as_ref(),
            }
            .expect("invariant: start_on cached this route before emitting");
            route.extend_from_slice(&entry.route);
        }
        let event = ExecEvent::TransferIssued { route, bytes };
        let mut obs = std::mem::take(&mut self.observers);
        {
            let ctx = ExecContext {
                plan: self.plan,
                mm: &self.mm,
                sim: &self.sim,
                done: &self.done_mirror,
            };
            for o in &mut obs {
                o.on_event(&ctx, &event);
            }
        }
        self.observers = obs;
        if let ExecEvent::TransferIssued { route, .. } = event {
            self.event_pool.reclaim_route(route);
        }
    }

    /// Starts a transfer over the cached route for `sel`, registering the
    /// route's simulator flight class at its first non-zero-byte use (the
    /// same creation point the uncached reference path has, so flight
    /// ordering is bit-identical). Zero-byte transfers keep the immediate
    /// path of `start_transfer`. Route errors are not cached: a failing
    /// pair re-surfaces its topology error on every attempt, like the
    /// reference.
    fn start_on(
        &mut self,
        sel: RouteSel,
        bytes: u64,
        tag: u64,
        lane: u32,
    ) -> Result<TransferId, ExecError> {
        let Self {
            topo,
            sim,
            routes_h2g,
            routes_g2h,
            routes_p2p,
            n_topo,
            ..
        } = self;
        let slot: &mut Option<RouteEntry> = match sel {
            RouteSel::HostToGpu(g) => &mut routes_h2g[g],
            RouteSel::GpuToHost(g) => &mut routes_g2h[g],
            RouteSel::P2p(s, d) => &mut routes_p2p[s * *n_topo + d],
        };
        if slot.is_none() {
            let (a, b) = match sel {
                RouteSel::HostToGpu(g) => (Endpoint::Host, Endpoint::Gpu(g)),
                RouteSel::GpuToHost(g) => (Endpoint::Gpu(g), Endpoint::Host),
                RouteSel::P2p(s, d) => (Endpoint::Gpu(s), Endpoint::Gpu(d)),
            };
            let route = topo.route(a, b)?.to_vec();
            *slot = Some(RouteEntry { route, class: None });
        }
        let entry = slot.as_mut().expect("invariant: populated just above");
        if bytes == 0 {
            return Ok(sim.start_transfer(&entry.route, 0, tag, lane)?);
        }
        let class = match entry.class {
            Some(c) => c,
            None => {
                let c = sim.register_route_class(&entry.route)?;
                entry.class = Some(c);
                c
            }
        };
        Ok(sim.start_transfer_on_class(class, bytes, tag, lane)?)
    }

    /// Pools a [`PendingTransfer`] record, starts the transfer with the
    /// slab handle as its completion tag, and emits the observer event.
    /// On failure the record is returned to the pool before the error
    /// propagates.
    fn issue_recorded(
        &mut self,
        sel: RouteSel,
        bytes: u64,
        purpose: Purpose,
        lane: usize,
        kind: SpanKind,
        label: SymbolId,
    ) -> Result<TransferId, ExecError> {
        let start = self.sim.now();
        let h = self.transfers.insert(PendingTransfer {
            xfer: 0,
            purpose,
            start,
            lane,
            kind,
            label,
        });
        match self.start_on(sel, bytes, h.to_bits(), lane as u32) {
            Ok(xfer) => {
                self.transfers
                    .get_mut(h)
                    .expect("invariant: inserted just above")
                    .xfer = xfer;
                self.mutations += 1;
                self.emit_transfer_issued(sel, bytes);
                Ok(xfer)
            }
            Err(e) => {
                let _ = self.transfers.remove(h);
                Err(e)
            }
        }
    }

    /// The interned label of a tensor (assigned at registration/alloc).
    fn tensor_sym(&self, id: TensorId) -> Result<SymbolId, ExecError> {
        self.labels
            .get(id as usize)
            .copied()
            .ok_or_else(|| ExecError::Plan(format!("tensor {id} has no label")))
    }

    /// Records the label of a freshly allocated tensor (ids are sequential,
    /// so this is a push in steady state).
    fn set_label(&mut self, id: TensorId, sym: SymbolId) {
        let ix = id as usize;
        if ix == self.labels.len() {
            self.labels.push(sym);
        } else if ix < self.labels.len() {
            self.labels[ix] = sym;
        } else {
            self.labels.resize(ix + 1, sym);
        }
    }

    /// The tensor id at key index `kix`; the key tuple is reconstructed
    /// only on the error path.
    fn tensor_id_at(
        &self,
        kix: usize,
        iter: u32,
        replica: usize,
        rf: TensorRef,
    ) -> Result<TensorId, ExecError> {
        self.ids[kix].ok_or_else(|| {
            let key = key_of(iter, replica, rf);
            ExecError::Plan(format!("tensor {key:?} not materialised"))
        })
    }

    /// Flat index of a done/dep entry.
    fn dep_ix(&self, iter: u32, replica: usize, task: TaskId) -> usize {
        (iter as usize * self.ks.rslots + replica) * self.num_tasks + task
    }

    fn is_done(&self, iter: u32, replica: usize, task: TaskId) -> bool {
        let ix = self.dep_ix(iter, replica, task);
        self.done_words[ix / 64] & (1u64 << (ix % 64)) != 0
    }

    /// Marks a task done; the keyed mirror (for observers) is maintained
    /// only while observers are attached.
    fn set_done(&mut self, iter: u32, replica: usize, task: TaskId) {
        let ix = self.dep_ix(iter, replica, task);
        self.done_words[ix / 64] |= 1u64 << (ix % 64);
        if !self.observers.is_empty() {
            self.done_mirror.insert((iter, replica, task));
        }
    }

    /// Marks `g` as unblockable. During a pass, GPUs above the one
    /// currently advancing join the same pass (dense visibility order);
    /// everything else waits for the next event's pass.
    fn wake(&mut self, g: usize) {
        // Sharded: foreign lanes exist (full plan, so registration and
        // the future-use table match the whole run) but never run.
        if self.shard.as_ref().is_some_and(|s| !s.local[g]) {
            return;
        }
        let (wi, bit) = (g / 64, 1u64 << (g % 64));
        match self.advancing {
            Some(cur) if g > cur => self.pass_w[wi] |= bit,
            _ => self.pending_w[wi] |= bit,
        }
    }

    /// Wakes every GPU (collective completion, fault application).
    fn wake_all(&mut self) {
        for g in 0..self.q_bounds.len() {
            self.wake(g);
        }
    }

    /// Adds `g` to the every-pass poll set (the dense cadence for retry
    /// loops that re-touch tensors each pass).
    fn poll_insert(&mut self, g: usize) {
        self.poll_w[g / 64] |= 1u64 << (g % 64);
    }

    /// Registers `g` as blocked on completion of `(iter, replica, task)`.
    fn register_dep_waiter(&mut self, g: usize, iter: u32, item: WorkItem) {
        let WorkItem::Task { replica, task } = item else {
            return;
        };
        // The first unsatisfied dependency is enough: its completion
        // re-checks readiness and re-registers on the next one if needed.
        let missing = self
            .plan
            .graph
            .task(task)
            .deps
            .iter()
            .find(|d| !self.is_done(iter, replica, **d));
        if let Some(&d) = missing {
            let base = self.dep_ix(iter, replica, d) * self.wpg;
            let w = &mut self.dep_w[base + g / 64];
            let bit = 1u64 << (g % 64);
            if *w & bit == 0 {
                *w |= bit;
                self.dep_live += 1;
            }
        }
    }

    /// Wakes GPUs blocked on task `(iter, replica, task)` completing.
    fn wake_dep_waiters(&mut self, iter: u32, replica: usize, task: TaskId) {
        if self.dep_live == 0 {
            return;
        }
        let base = self.dep_ix(iter, replica, task) * self.wpg;
        for wi in 0..self.wpg {
            let w = std::mem::take(&mut self.dep_w[base + wi]);
            if w == 0 {
                continue;
            }
            self.dep_live -= u64::from(w.count_ones());
            let mut rem = w;
            while rem != 0 {
                let b = rem.trailing_zeros() as usize;
                rem &= rem - 1;
                self.wake(wi * 64 + b);
            }
        }
    }

    /// Registers `g` as stalled on tensor `id` (moving / pinned elsewhere).
    fn register_tensor_waiter(&mut self, g: usize, id: TensorId) {
        #[cfg(feature = "mutation_hooks")]
        if self.drop_one_wake {
            self.drop_one_wake = false;
            return;
        }
        let base = id as usize * self.wpg;
        if self.tw.len() < base + self.wpg {
            self.tw.resize(base + self.wpg, 0);
        }
        let w = &mut self.tw[base + g / 64];
        let bit = 1u64 << (g % 64);
        if *w & bit == 0 {
            *w |= bit;
            self.tw_live += 1;
        }
    }

    /// Wakes GPUs stalled on tensor `id` (its move settled, or it was
    /// unpinned or freed).
    fn wake_tensor_waiters(&mut self, id: TensorId) {
        if self.tw_live == 0 {
            return;
        }
        let base = id as usize * self.wpg;
        if self.tw.len() < base + self.wpg {
            return;
        }
        for wi in 0..self.wpg {
            let w = std::mem::take(&mut self.tw[base + wi]);
            if w == 0 {
                continue;
            }
            self.tw_live -= u64::from(w.count_ones());
            let mut rem = w;
            while rem != 0 {
                let b = rem.trailing_zeros() as usize;
                rem &= rem - 1;
                self.wake(wi * 64 + b);
            }
        }
    }

    /// Applies an injected fault when its timer fires.
    fn apply_fault(&mut self, fault: Fault) -> Result<(), ExecError> {
        self.fault_applied = true;
        match fault {
            Fault::LinkBandwidth { channel, factor } => {
                let nominal = self
                    .topo
                    .channels()
                    .get(channel)
                    .ok_or_else(|| ExecError::Plan(format!("fault on unknown channel {channel}")))?
                    .bandwidth;
                self.sim.set_channel_bandwidth(channel, nominal * factor)?;
                if self.resilience {
                    if factor < DEGRADED_FACTOR {
                        self.degraded_channels.insert(channel);
                        self.reroute_inflight_p2p(channel)?;
                    } else {
                        // A later fault can restore the link.
                        self.degraded_channels.remove(&channel);
                    }
                }
            }
            Fault::CapacitySqueeze { gpu, factor } => {
                let nominal = self.topo.gpu(gpu)?.mem_bytes;
                let target = (nominal as f64 * factor) as u64;
                // Clamped internally so in-use bytes still fit.
                self.mm.set_capacity(gpu, target)?;
            }
            Fault::ComputeJitter { gpu, factor } => {
                if gpu >= self.compute_rate.len() {
                    return Err(ExecError::Plan(format!("fault on unknown gpu {gpu}")));
                }
                self.compute_rate[gpu] = factor;
            }
        }
        self.emit(ExecEvent::FaultApplied { fault });
        Ok(())
    }

    /// Deterministic exponential backoff with seeded jitter: delay for
    /// retry number `attempts`, salted so concurrent retry streams (per
    /// GPU, per tensor) decorrelate without sharing mutable RNG state.
    fn retry_backoff(&self, salt: u64, attempts: u32) -> f64 {
        let base = RETRY_BASE_SECS * (1u64 << attempts.min(16)) as f64;
        let bits = splitmix64(
            self.resilience_seed ^ salt.wrapping_mul(0x9E37_79B9) ^ ((attempts as u64 + 1) << 32),
        );
        // 53 uniform bits → jitter in [1.0, 2.0) × base.
        let jitter = 1.0 + (bits >> 11) as f64 / (1u64 << 53) as f64;
        base * jitter
    }

    /// Schedules a resilience retry timer `delay` virtual seconds from
    /// now. The tag encodes an index into `retry_meta`.
    fn schedule_retry(&mut self, kind: RetryKind, delay: f64) -> Result<(), ExecError> {
        let tag = RETRY_TAG_BIAS + self.retry_meta.len() as u64;
        let lane = match kind {
            RetryKind::Spill { gpu, .. } | RetryKind::Reroute { gpu, .. } => gpu as u32,
        };
        self.retry_meta.push(kind);
        let at = self.sim.now() + delay;
        self.sim.set_timer(at, tag, lane)?;
        Ok(())
    }

    /// Whether the p2p route `src → dst` crosses a degraded channel.
    fn route_degraded(&self, src: usize, dst: usize) -> Result<bool, ExecError> {
        if self.degraded_channels.is_empty() {
            return Ok(false);
        }
        let route = self.topo.route(Endpoint::Gpu(src), Endpoint::Gpu(dst))?;
        Ok(route.iter().any(|c| self.degraded_channels.contains(c)))
    }

    /// Routes a memory failure from a fetch/alloc attempt of step
    /// `step_id` on `g` into pressure-spill mode. Only
    /// `InsufficientMemory` on the *current* slot of a fault-degraded,
    /// resilience-armed run is absorbed (the step parks and a backoff
    /// timer re-drives it); everything else — including all failures on
    /// clean runs and before any fault fires — propagates unchanged, so
    /// clean behaviour stays byte-identical with the layer on or off.
    /// Prefetch-slot shortfalls keep their existing fallback
    /// (cancel-and-retry serially in `try_prefetch`).
    fn spill_guard(
        &mut self,
        g: usize,
        slot: Slot,
        step_id: u64,
        e: MemError,
    ) -> Result<bool, ExecError> {
        let needed = match (&e, slot) {
            (MemError::InsufficientMemory { needed, .. }, Slot::Current)
                if self.resilience && self.fault_applied =>
            {
                *needed
            }
            _ => return Err(e.into()),
        };
        // Give back the double-buffer first: prefetch pins are the
        // cheapest memory to reclaim, and cancellation is only legal from
        // the synchronous Idle state (no transfers in flight).
        if self.pre.live[g] && matches!(self.pre.inflight[g], InFlight::Idle) {
            self.cancel_prefetch(g)?;
        }
        match self.spills[g] {
            Some(ref mut sp) if sp.step_id == step_id => {
                sp.needed = needed;
                if !sp.timer_pending {
                    // First failed attempt after a fired retry: re-arm.
                    sp.timer_pending = true;
                    let attempts = sp.attempts;
                    let delay = self.retry_backoff(g as u64, attempts);
                    self.schedule_retry(
                        RetryKind::Spill {
                            gpu: g,
                            step: step_id,
                        },
                        delay,
                    )?;
                }
            }
            _ => {
                // Entering spill mode for this step (replacing any stale
                // record of an earlier step on this GPU).
                self.spills[g] = Some(SpillState {
                    step_id,
                    attempts: 0,
                    timer_pending: true,
                    needed,
                });
                self.res_outcome.spill_events += 1;
                self.mutations += 1;
                self.emit(ExecEvent::PressureSpill { gpu: g, needed });
                let delay = self.retry_backoff(g as u64, 0);
                self.schedule_retry(
                    RetryKind::Spill {
                        gpu: g,
                        step: step_id,
                    },
                    delay,
                )?;
            }
        }
        // Every retry re-touches tensors, so it must run each pass — the
        // dense cadence (same reasoning as the prefetch cancel loop).
        self.poll_insert(g);
        Ok(false)
    }

    /// A spill retry timer fired: count the attempt, escalate to a
    /// UVM-style capacity overcommit once `MAX_SPILL_ATTEMPTS` backoffs
    /// have not freed enough room (eviction writebacks may be structurally
    /// unable to cover the shortfall after a harsh squeeze — overcommit
    /// models paging the excess and guarantees forward progress), and wake
    /// the GPU to re-attempt.
    fn fire_spill_retry(&mut self, gpu: usize, step: u64) -> Result<(), ExecError> {
        let Some(mut sp) = self.spills[gpu] else {
            return Ok(());
        };
        if sp.step_id != step {
            return Ok(()); // stale timer for an earlier spill
        }
        let live = self.cur.live[gpu] && self.cur.id[gpu] == step;
        if !live {
            // The step completed between scheduling and firing: spill over.
            self.spills[gpu] = None;
            self.mutations += 1;
            return Ok(());
        }
        sp.timer_pending = false;
        sp.attempts += 1;
        self.res_outcome.retries += 1;
        if sp.attempts >= MAX_SPILL_ATTEMPTS {
            let used = self.mm.used(gpu)?;
            self.mm.set_capacity(gpu, used.saturating_add(sp.needed))?;
            self.res_outcome.overcommits += 1;
            sp.attempts = 0;
        }
        self.spills[gpu] = Some(sp);
        self.mutations += 1;
        self.poll_insert(gpu);
        self.wake(gpu);
        Ok(())
    }

    /// A reroute retry timer fired: flip the parked step back to Idle so
    /// the fetch is re-attempted (host bounce while the route stays
    /// degraded, p2p again once it recovers).
    fn fire_reroute_retry(&mut self, gpu: usize, step: u64) -> Result<(), ExecError> {
        self.res_outcome.retries += 1;
        if let Some(slot) = self.slot_of(gpu, step) {
            let plane = self.plane_mut(slot);
            if matches!(plane.inflight[gpu], InFlight::Moving) {
                plane.inflight[gpu] = InFlight::Idle;
                self.mutations += 1;
            }
        }
        self.wake(gpu);
        Ok(())
    }

    /// Dispatches a fired resilience retry timer by its tag.
    fn handle_retry_timer(&mut self, tag: u64) -> Result<(), ExecError> {
        let idx = (tag - RETRY_TAG_BIAS) as usize;
        let kind = *self
            .retry_meta
            .get(idx)
            .ok_or_else(|| ExecError::Plan(format!("retry timer {idx} has no metadata")))?;
        match kind {
            RetryKind::Spill { gpu, step } => self.fire_spill_retry(gpu, step),
            RetryKind::Reroute { gpu, step } => self.fire_reroute_retry(gpu, step),
        }
    }

    /// Cancels every in-flight p2p fetch move routed over the degraded
    /// `channel` and schedules a backoff retry for each parked step. The
    /// tensor reverts to its source device, so the retried fetch sees it
    /// there and (with the route degraded) takes the host-bounce path.
    /// Collective ring hops are barriers and are never cancelled — they
    /// just run slowly on the degraded link.
    fn reroute_inflight_p2p(&mut self, channel: ChannelId) -> Result<(), ExecError> {
        let mut victims: Vec<(TransferId, usize, u64, TensorId, SlabHandle)> = Vec::new();
        for (h, pt) in self.transfers.iter() {
            if pt.kind != SpanKind::P2p {
                continue;
            }
            let Purpose::Move { gpu, step, tensor } = pt.purpose else {
                continue;
            };
            let Residency::MovingToDevice {
                dst,
                src: Some(src),
            } = self.mm.info(tensor)?.residency
            else {
                continue;
            };
            if self
                .topo
                .route(Endpoint::Gpu(src), Endpoint::Gpu(dst))?
                .contains(&channel)
            {
                victims.push((pt.xfer, gpu, step, tensor, h));
            }
        }
        // The slab iterates in slot order; sort by transfer id for the
        // same deterministic cancellation (and trace) order as the
        // keyed-map reference.
        victims.sort_unstable();
        for (xfer, gpu, step, tensor, h) in victims {
            if !self.sim.cancel_transfer(xfer)? {
                continue; // completion already delivered
            }
            let pt = self.transfers.remove(h)?;
            // The aborted attempt occupied the lane until now: record the
            // partial span so the trace shows the cancelled hop.
            self.trace.record_sym(
                pt.start,
                self.sim.now(),
                Some(pt.lane),
                pt.kind,
                pt.label,
                self.sim.current_wave(),
            );
            self.mm.cancel_move_to_device(tensor)?;
            self.mutations += 1;
            self.res_outcome.rerouted_transfers += 1;
            self.emit(ExecEvent::TransferRerouted { gpu, channel });
            let attempts = *self
                .reroute_attempts
                .entry(tensor)
                .and_modify(|a| *a += 1)
                .or_insert(0);
            let delay = self.retry_backoff(tensor ^ 0x5EED, attempts);
            self.schedule_retry(RetryKind::Reroute { gpu, step }, delay)?;
            // The tensor is back on its source: fetches stalled on the
            // in-flight move can proceed.
            self.wake_tensor_waiters(tensor);
        }
        Ok(())
    }

    /// Pulls the next simulator event, enforcing the event budget.
    fn next_event(&mut self) -> Result<Option<Completion>, ExecError> {
        match self.sim.next() {
            Some((_, completion)) => {
                self.events_processed += 1;
                if let Some(budget) = self.event_budget {
                    if self.events_processed > budget {
                        return Err(ExecError::Stuck(format!(
                            "event budget {budget} exceeded at t={:.6}s",
                            self.sim.now()
                        )));
                    }
                }
                Ok(Some(completion))
            }
            None => Ok(None),
        }
    }

    /// Advances GPU `g` once, maintaining the structural counters and the
    /// in-pass wake ordering (`advancing` routes same-pass wakes).
    fn advance_counted(&mut self, g: usize) -> Result<(), ExecError> {
        self.advancing = Some(g);
        self.counters.advance_calls += 1;
        let before = self.mutations;
        let res = self.advance(g);
        self.advancing = None;
        res?;
        if self.mutations != before {
            self.counters.wake_set_hits += 1;
        } else {
            self.counters.spurious_wakes += 1;
        }
        Ok(())
    }

    /// One wake-set pass: advances the GPUs woken by the last event (plus
    /// the poll set) in ascending order, as a single drain of the batched
    /// wake words. Wakes generated during the pass for a GPU above the one
    /// currently advancing join the same pass — exactly the dense pass's
    /// visibility order (such wakes can only set bits above the cursor,
    /// so the ascending scan finds them).
    fn run_pass(&mut self) -> Result<(), ExecError> {
        for wi in 0..self.wpg {
            self.pass_w[wi] = std::mem::take(&mut self.pending_w[wi]) | self.poll_w[wi];
        }
        let mut wi = 0;
        while wi < self.wpg {
            let word = self.pass_w[wi];
            if word == 0 {
                wi += 1;
                continue;
            }
            let b = word.trailing_zeros() as usize;
            let bit = 1u64 << b;
            self.pass_w[wi] &= !bit;
            self.poll_w[wi] &= !bit;
            self.advance_counted(wi * 64 + b)?;
        }
        Ok(())
    }

    /// Runs the plan to completion; returns the run summary and trace.
    pub fn run(self) -> Result<(RunSummary, Trace), ExecError> {
        let (summary, trace, _) = self.run_counted()?;
        Ok((summary, trace))
    }

    /// Like [`SimExecutor::run`], but also returns the event-loop's
    /// structural [`ExecCounters`].
    pub fn run_counted(mut self) -> Result<(RunSummary, Trace, ExecCounters), ExecError> {
        #[cfg(feature = "dense_advance")]
        if self.dense {
            return self.run_dense();
        }
        let wall_start = std::time::Instant::now();
        self.run_core()?;
        let summary = self.build_summary(wall_start.elapsed().as_secs_f64());
        Ok((summary, self.trace, self.counters))
    }

    /// Like [`SimExecutor::run`], but returns every recyclable container
    /// to `pool` afterwards — on success *and* on error, so a failed
    /// sweep cell (a planner rejection happens before construction, an
    /// execution error after) still recycles its arenas. The returned
    /// trace is part of the run's output; hand it back with
    /// [`ExecPool::recycle_trace`] once read.
    ///
    /// Dense-reference mode is delegated to the frozen executor and not
    /// pooled (the reference predates the pooling layer); the pool is
    /// left untouched in that case.
    pub fn run_pooled(mut self, pool: &mut ExecPool) -> Result<(RunSummary, Trace), ExecError> {
        #[cfg(feature = "dense_advance")]
        if self.dense {
            let (summary, trace, _) = self.run_dense()?;
            return Ok((summary, trace));
        }
        let wall_start = std::time::Instant::now();
        match self.run_core() {
            Ok(()) => {
                let summary = self.build_summary(wall_start.elapsed().as_secs_f64());
                let trace = std::mem::take(&mut self.trace);
                self.dismantle(pool);
                Ok((summary, trace))
            }
            Err(e) => {
                self.dismantle(pool);
                Err(e)
            }
        }
    }

    /// Returns every recyclable container to `pool`, consuming the
    /// executor. Hash-ordered state (`done_mirror`, `reroute_attempts`,
    /// `degraded_channels`) and run-specific state (policy, observers,
    /// faults, counters) are dropped — rebuilt fresh each run, so no
    /// iteration-order artifact can leak across cells.
    fn dismantle(self, pool: &mut ExecPool) {
        pool.sim = Some(self.sim);
        pool.mm = Some(self.mm);
        // `run_pooled` takes the real trace before dismantling (it is the
        // run's output); what lands here on the error path still carries
        // its arena, which is all the pool wants.
        pool.trace = Some(self.trace);
        pool.cur = Some(self.cur);
        pool.pre = Some(self.pre);
        pool.transfers = self.transfers;
        pool.event_pool = self.event_pool;
        pool.ids = self.ids;
        pool.labels = self.labels;
        pool.task_syms = self.task_syms;
        pool.nu_start = self.nu_start;
        pool.nu_end = self.nu_end;
        pool.nu_cur = self.nu_cur;
        pool.nu_seqs = self.nu_seqs;
        pool.q_items = self.q_items;
        pool.q_bounds = self.q_bounds;
        pool.q_cursor = self.q_cursor;
        pool.ct_items = self.ct_items;
        pool.computes = self.computes;
        pool.collectives = self.collectives;
        pool.done_words = self.done_words;
        pool.dep_w = self.dep_w;
        pool.tw = self.tw;
        pool.pass_w = self.pass_w;
        pool.pending_w = self.pending_w;
        pool.poll_w = self.poll_w;
        pool.compute_rate = self.compute_rate;
        pool.routes_h2g = self.routes_h2g;
        pool.routes_g2h = self.routes_g2h;
        pool.routes_p2p = self.routes_p2p;
        pool.spills = self.spills;
        pool.retry_meta = self.retry_meta;
        pool.evict_scratch = self.evict_scratch;
    }

    /// Adds planning (or other caller-side setup) wall time to the
    /// summary's `setup_secs`, which otherwise covers only executor
    /// construction. The core crate's run helpers use this to fold the
    /// `plan()` call into the reported setup cost.
    pub fn add_setup_secs(&mut self, secs: f64) {
        self.setup_secs += secs;
    }

    /// The event loop proper: initial pass, drain, stuck check, (sharded:
    /// final rendezvous), dirty-state flush. Split from [`Self::run_counted`]
    /// so [`crate::shard`] can drive it on a borrowed executor and read the
    /// simulator clock afterwards for error ordering.
    pub(crate) fn run_core(&mut self) -> Result<(), ExecError> {
        // Initial pass: every GPU.
        self.wake_all();
        self.run_pass()?;
        while let Some(completion) = self.next_event()? {
            self.handle(completion)?;
            self.run_pass()?;
        }
        // Everything must have drained.
        let mut stuck = Vec::new();
        for g in 0..self.q_bounds.len() {
            // Foreign lanes keep their full (never-started) queues.
            if self.shard.as_ref().is_some_and(|s| !s.local[g]) {
                continue;
            }
            let queued = (self.q_bounds[g].1 - self.q_cursor[g]) as usize;
            if self.cur.live[g] || queued > 0 {
                let detail = if self.cur.live[g] {
                    let front = if self.cur.t_cur[g] < self.cur.t_end[g] {
                        let ct = self.ct_items[self.cur.t_cur[g] as usize];
                        let key = key_of(self.cur.iter[g], ct.replica as usize, ct.rf);
                        let t = if ct.alloc && !self.cur.front_converted[g] {
                            Target::Alloc(key)
                        } else {
                            Target::Input(key)
                        };
                        let kix = self.ks.key_ix(self.cur.iter[g], ct.replica as usize, ct.rf);
                        let res = self.ids[kix]
                            .and_then(|id| self.mm.info(id).ok())
                            .map(|i| format!("{:?} pinned={}", i.residency, i.pinned))
                            .unwrap_or_else(|| "unmaterialised".to_string());
                        Some(format!("front target {t:?} [{res}]"))
                    } else {
                        None
                    };
                    format!(
                        "{:?} inflight={:?} {}",
                        self.cur.item[g],
                        self.cur.inflight[g],
                        front.unwrap_or_default()
                    )
                } else {
                    String::new()
                };
                stuck.push(format!("gpu{g}: {queued} queued, current={detail}"));
            }
        }
        if !stuck.is_empty() {
            return Err(ExecError::Stuck(stuck.join("; ")));
        }
        // Sharded: the local queues drained at this shard's *local* time,
        // but the unsharded run flushes once everything everywhere is
        // done. Rendezvous on the global max drain time and pump an inert
        // sync timer so the clock (and therefore every flush span and
        // `sim_secs`) matches the unsharded run bit-for-bit.
        if let Some(ctx) = &self.shard {
            let barrier = std::sync::Arc::clone(&ctx.barrier);
            let (t_end, w_end) = barrier
                .arrive(
                    crate::shard::Round::Final,
                    (self.sim.now(), self.sim.current_wave()),
                )
                .map_err(ExecError::ShardAborted)?;
            self.sim.set_timer_at_wave(
                t_end,
                SHARD_SYNC_TAG,
                harmony_simulator::CONTROL_LANE,
                w_end,
            )?;
            while let Some(completion) = self.next_event()? {
                self.handle(completion)?;
                self.run_pass()?;
            }
        }
        self.flush_dirty_state()?;
        self.emit(ExecEvent::RunFinished);
        self.counters.slab_high_water = u64::from(self.transfers.high_water());
        self.counters.slab_fresh_allocs = self.transfers.fresh_allocs();
        Ok(())
    }

    /// Assembles the [`RunSummary`] after [`Self::run_core`] succeeds. In a
    /// sharded run the per-GPU vectors still span *all* GPUs (foreign
    /// entries report this shard's view — registration-time zeros) and the
    /// merge keeps each owner's entries; `events_processed` excludes
    /// foreign completions so the shard counts sum to the unsharded total.
    pub(crate) fn build_summary(&self, elapsed_secs: f64) -> RunSummary {
        let n = self.q_bounds.len();
        RunSummary {
            name: self.plan.name.clone(),
            sim_secs: self.sim.now(),
            samples: self.plan.samples_per_iteration * self.iterations as u64,
            swap_in_bytes: (0..n)
                .map(|g| {
                    self.mm
                        .stats()
                        .device_total(g, harmony_memory::Direction::In)
                })
                .collect(),
            swap_out_bytes: (0..n)
                .map(|g| {
                    self.mm
                        .stats()
                        .device_total(g, harmony_memory::Direction::Out)
                })
                .collect(),
            p2p_bytes: self.mm.stats().p2p_bytes,
            peak_mem_bytes: (0..n).map(|g| self.mm.peak_used(g).unwrap_or(0)).collect(),
            demand_bytes: self.plan.demand_bytes.clone(),
            swap_by_class: [
                harmony_memory::TensorClass::Weight,
                harmony_memory::TensorClass::Grad,
                harmony_memory::TensorClass::OptState,
                harmony_memory::TensorClass::Activation,
                harmony_memory::TensorClass::Stash,
                harmony_memory::TensorClass::WeightStash,
                harmony_memory::TensorClass::Workspace,
            ]
            .iter()
            .map(|c| (c.to_string(), self.mm.stats().class_total(*c)))
            .collect(),
            channel_busy_secs: self
                .topo
                .channels()
                .iter()
                .map(|c| (c.name.clone(), self.sim.stats().channel_busy_secs[c.id]))
                .collect(),
            events_processed: self.events_processed - self.shard_foreign_events,
            elapsed_secs,
            setup_secs: self.setup_secs,
            // Populated whenever the layer is armed and faults were
            // injected — even if all zeros (the run absorbed nothing) —
            // and None otherwise, so clean summaries stay byte-identical.
            resilience: if self.resilience && !self.faults.is_empty() {
                let mut out = self.res_outcome.clone();
                out.final_mode = if out.degraded() || !self.degraded_channels.is_empty() {
                    ResilienceMode::Degraded
                } else {
                    ResilienceMode::Normal
                };
                Some(out)
            } else {
                None
            },
            mem_counters: {
                let c = self.mm.stats().counters;
                Some(harmony_trace::summary::MemPlanningCounters {
                    fresh_allocs: c.fresh_allocs,
                    candidate_scans: c.candidate_scans,
                    index_ops: c.index_ops,
                    victim_pops: c.victim_pops,
                })
            },
        }
    }

    /// Installs the sharded-run context ([`crate::shard`]).
    pub(crate) fn set_shard_ctx(&mut self, ctx: crate::shard::ShardCtx) {
        self.shard = Some(ctx);
    }

    /// The current virtual time — the error-ordering key for sharded runs.
    pub(crate) fn sim_now(&self) -> f64 {
        self.sim.now()
    }

    /// Moves the trace and counters out after a sharded [`Self::run_core`].
    pub(crate) fn take_parts(&mut self) -> (Trace, ExecCounters) {
        (std::mem::take(&mut self.trace), self.counters)
    }

    /// Delegates a dense-reference run to the frozen pre-rewrite executor
    /// (`crate::dense`), forwarding every pre-run configuration knob. The
    /// reference keeps the old keyed-map internals verbatim, so the
    /// execdiff differential compares the slab/SoA engine against true
    /// reference semantics, not a re-skin of itself.
    #[cfg(feature = "dense_advance")]
    fn run_dense(mut self) -> Result<(RunSummary, Trace, ExecCounters), ExecError> {
        let mut r = crate::dense::ReferenceExecutor::with_iterations(
            self.topo,
            self.model,
            self.plan,
            self.iterations,
        )?;
        if self.resilience {
            r.enable_resilience(self.resilience_seed);
        }
        r.inject_faults(&self.faults)?;
        if let Some(budget) = self.event_budget {
            r.set_event_budget(budget);
        }
        for o in std::mem::take(&mut self.observers) {
            r.attach_observer(o);
        }
        for o in self.mm.take_observers() {
            r.attach_mem_observer(o);
        }
        r.run_counted()
    }

    /// Writes back all dirty device-resident persistent state (updated
    /// weights, reset gradient buffers, optimizer state) at the end of the
    /// iteration — checkpoint semantics. Without this, whichever tensors
    /// happen to still be resident when the run ends would be missing from
    /// the measured swap volume, making runs incomparable to the
    /// per-iteration analytical model. Clean tensors flush for free under
    /// either scheme (their host copy is already valid).
    fn flush_dirty_state(&mut self) -> Result<(), ExecError> {
        let mut sorted: Vec<TensorId> = self
            .ids
            .iter()
            .filter_map(|o| *o)
            .filter(|&id| {
                self.mm
                    .info(id)
                    .map(|t| t.dirty && matches!(t.residency, Residency::OnDevice(_)))
                    .unwrap_or(false)
            })
            .collect();
        sorted.sort_unstable();
        for id in sorted {
            let label = self.tensor_sym(id)?;
            let (src, bytes) = self.mm.begin_swap_out(id)?;
            self.issue_recorded(
                RouteSel::GpuToHost(src),
                bytes,
                Purpose::Flush { tensor: id },
                src,
                SpanKind::SwapOut,
                label,
            )?;
        }
        while let Some(completion) = self.next_event()? {
            self.handle(completion)?;
        }
        Ok(())
    }

    fn deps_ready(&self, iter: u32, item: WorkItem) -> bool {
        match item {
            WorkItem::Task { replica, task } => self
                .plan
                .graph
                .task(task)
                .deps
                .iter()
                .all(|d| self.is_done(iter, replica, *d)),
            WorkItem::AllReduce { .. } => true, // queue order + barrier
        }
    }

    fn plane_mut(&mut self, slot: Slot) -> &mut StepPlane {
        match slot {
            Slot::Current => &mut self.cur,
            Slot::Prefetch => &mut self.pre,
        }
    }

    /// Locates the slot currently holding step `step_id` on `gpu` (the
    /// step may have been promoted from prefetch to current since the
    /// transfer was issued).
    fn slot_of(&self, gpu: usize, step_id: u64) -> Option<Slot> {
        if self.cur.live[gpu] && self.cur.id[gpu] == step_id {
            Some(Slot::Current)
        } else if self.pre.live[gpu] && self.pre.id[gpu] == step_id {
            Some(Slot::Prefetch)
        } else {
            None
        }
    }

    /// Advances the per-key future-use cursor past `seq` and pushes the
    /// next-use hint to the memory manager (when the key has a future-use
    /// run at all).
    fn update_next_use(
        &mut self,
        kix: usize,
        seq: u64,
        iter: u32,
        replica: usize,
        rf: TensorRef,
    ) -> Result<(), ExecError> {
        let (start, end) = (self.nu_start[kix], self.nu_end[kix]);
        if end > start {
            let mut cur = self.nu_cur[kix];
            while cur < end && self.nu_seqs[cur as usize] <= seq {
                cur += 1;
            }
            self.nu_cur[kix] = cur;
            let hint = if cur < end {
                Some(self.nu_seqs[cur as usize])
            } else {
                None
            };
            let id = self.tensor_id_at(kix, iter, replica, rf)?;
            self.mm.set_next_use(id, hint)?;
        }
        Ok(())
    }

    /// Issues writebacks (or free drops) for eviction victims. Returns the
    /// number of in-flight transfers (zero when every victim was dropped).
    fn issue_evictions(
        &mut self,
        gpu: usize,
        step_id: u64,
        victims: &[TensorId],
    ) -> Result<u32, ExecError> {
        let mut count = 0u32;
        for &v in victims {
            if self.plan.scheme.clean_drop && self.mm.can_drop(v)? {
                self.mm.drop_to_host(v)?;
                self.mutations += 1;
                continue;
            }
            let label = self.tensor_sym(v)?;
            let (src, bytes) = self.mm.begin_swap_out(v)?;
            self.issue_recorded(
                RouteSel::GpuToHost(src),
                bytes,
                Purpose::Eviction {
                    gpu,
                    step: step_id,
                    tensor: v,
                },
                src,
                SpanKind::SwapOut,
                label,
            )?;
            count += 1;
        }
        Ok(count)
    }

    /// Promotes the prefetched step of `g` into the current slot (scalar
    /// copies plus a pin-vector swap — no allocation).
    fn promote(&mut self, g: usize) {
        let (cur, pre) = (&mut self.cur, &mut self.pre);
        debug_assert!(cur.pinned[g].is_empty(), "retire cleared the pin list");
        cur.live[g] = true;
        cur.id[g] = pre.id[g];
        cur.seq[g] = pre.seq[g];
        cur.iter[g] = pre.iter[g];
        cur.item[g] = pre.item[g];
        cur.t_cur[g] = pre.t_cur[g];
        cur.t_end[g] = pre.t_end[g];
        cur.targets_built[g] = pre.targets_built[g];
        cur.front_converted[g] = pre.front_converted[g];
        cur.inflight[g] = pre.inflight[g];
        std::mem::swap(&mut cur.pinned[g], &mut pre.pinned[g]);
        pre.live[g] = false;
    }

    /// Drives GPU `g` as far as possible without waiting on events.
    /// Single pass: every exit either blocks on a simulator event (whose
    /// completion re-invokes `advance`) or submits work.
    fn advance(&mut self, g: usize) -> Result<(), ExecError> {
        // Pop a new item if idle.
        if !self.cur.live[g] {
            if self.pre.live[g] {
                // A prefetched step becomes current the moment the slot
                // frees up.
                self.promote(g);
                self.mutations += 1;
            } else {
                let c = self.q_cursor[g];
                if c >= self.q_bounds[g].1 {
                    return Ok(());
                }
                self.q_cursor[g] = c + 1;
                let qi = self.q_items[c as usize];
                let id = self.next_step_id;
                self.next_step_id += 1;
                load_step(&mut self.cur, g, id, &qi, false);
                self.mutations += 1;
            }
        }
        if matches!(self.cur.inflight[g], InFlight::Computing) {
            // Overlap: drive the next item's fetches while computing.
            self.try_prefetch(g)?;
            return Ok(());
        }
        if !matches!(self.cur.inflight[g], InFlight::Idle) {
            return Ok(()); // waiting on an event
        }
        let (item, iter) = (self.cur.item[g], self.cur.iter[g]);
        if !self.cur.targets_built[g] {
            if !self.deps_ready(iter, item) {
                self.register_dep_waiter(g, iter, item);
                return Ok(());
            }
            // Targets are precompiled; "building" is the readiness gate.
            self.cur.targets_built[g] = true;
            self.mutations += 1;
        }
        // Process fetch targets until blocked or done.
        if self.process_targets(g, Slot::Current)? {
            // Blocked on a transfer; still try to overlap nothing —
            // fetches of the current step have priority.
            return Ok(());
        }
        if self.cur.t_cur[g] < self.cur.t_end[g] {
            // Stalled (tensor in flight elsewhere); retry on next event.
            return Ok(());
        }
        // All tensors resident and pinned: run.
        match item {
            WorkItem::Task { replica, task } => {
                self.start_compute(g, replica, task)?;
                // Kick off the prefetch for the overlapped window.
                self.try_prefetch(g)?;
                Ok(())
            }
            WorkItem::AllReduce { pack } => {
                self.arrive_collective(g, iter, pack)?;
                Ok(())
            }
        }
    }

    /// Starts or continues prefetching the next queue item while the
    /// current step computes. No-op unless the scheme enables prefetch.
    fn try_prefetch(&mut self, g: usize) -> Result<(), ExecError> {
        if !self.plan.scheme.prefetch {
            return Ok(());
        }
        if !self.pre.live[g] {
            // Only prefetch plain tasks whose dependencies are already
            // satisfied; collectives are barriers and must not be entered
            // early.
            let c = self.q_cursor[g];
            if c >= self.q_bounds[g].1 {
                return Ok(());
            }
            let qi = self.q_items[c as usize];
            if matches!(qi.item, WorkItem::AllReduce { .. }) {
                return Ok(());
            }
            if !self.deps_ready(qi.iter, qi.item) {
                self.register_dep_waiter(g, qi.iter, qi.item);
                return Ok(());
            }
            self.q_cursor[g] = c + 1;
            let id = self.next_step_id;
            self.next_step_id += 1;
            load_step(&mut self.pre, g, id, &qi, true);
            self.mutations += 1;
        }
        // Continue fetching if the prefetch slot is idle. Double-buffering
        // is opportunistic: if the two working sets do not fit together,
        // cancel the prefetch and fall back to serial fetching rather than
        // failing the run — the memory cost of prefetch is exactly the
        // trade-off under study (§4).
        if self.pre.live[g] && matches!(self.pre.inflight[g], InFlight::Idle) {
            match self.process_targets(g, Slot::Prefetch) {
                Ok(_) => {}
                Err(ExecError::Mem(MemError::InsufficientMemory { .. })) => {
                    self.cancel_prefetch(g)?;
                    // Each retry of the opportunistic double-buffer re-pins
                    // and re-touches resident tensors (LRU recency), so the
                    // retry must run every pass — the dense cadence.
                    self.poll_insert(g);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Abandons an in-progress prefetch: releases its pins and rewinds the
    /// queue cursor (no transfers can be in flight — cancellation only
    /// happens from the synchronous Idle state, and pops only happen while
    /// the prefetch slot is empty, so the prefetched entry is always the
    /// last one popped).
    fn cancel_prefetch(&mut self, g: usize) -> Result<(), ExecError> {
        if self.pre.live[g] {
            debug_assert!(matches!(self.pre.inflight[g], InFlight::Idle));
            self.pre.live[g] = false;
            let mut pins = std::mem::take(&mut self.pre.pinned[g]);
            for id in pins.drain(..) {
                self.mm.unpin(id)?;
                self.wake_tensor_waiters(id);
            }
            self.pre.pinned[g] = pins;
            let c = self.q_cursor[g] - 1;
            debug_assert_eq!(
                self.q_items[c as usize].seq, self.pre.seq[g],
                "the prefetched step is the last popped queue entry"
            );
            self.q_cursor[g] = c;
            self.mutations += 1;
        }
        Ok(())
    }

    /// Processes fetch targets for a step slot of GPU `g`. Returns `true`
    /// if an async operation was issued (caller must wait), `false` if the
    /// front target could not progress (stall) or targets are exhausted.
    fn process_targets(&mut self, g: usize, slot: Slot) -> Result<bool, ExecError> {
        loop {
            let plane = match slot {
                Slot::Current => &self.cur,
                Slot::Prefetch => &self.pre,
            };
            if !plane.live[g] {
                return Ok(false);
            }
            let (seq, step_id) = (plane.seq[g], plane.id[g]);
            let t_cur = plane.t_cur[g];
            if t_cur >= plane.t_end[g] {
                return Ok(false);
            }
            let iter = plane.iter[g];
            let converted = plane.front_converted[g];
            let ct = self.ct_items[t_cur as usize];
            let replica = ct.replica as usize;
            let kix = self.ks.key_ix(iter, replica, ct.rf);
            if !ct.alloc || converted {
                let id = self.tensor_id_at(kix, iter, replica, ct.rf)?;
                match self.mm.info(id)?.residency {
                    Residency::OnDevice(d) if d == g => {
                        self.mm.touch(id)?;
                        self.mm.pin(id)?;
                        self.update_next_use(kix, seq, iter, replica, ct.rf)?;
                        let plane = self.plane_mut(slot);
                        plane.pinned[g].push(id);
                        plane.t_cur[g] = t_cur + 1;
                        plane.front_converted[g] = false;
                        self.mutations += 1;
                        continue;
                    }
                    Residency::OnDevice(src) => {
                        // Needs to come from a peer GPU.
                        let mut victims = std::mem::take(&mut self.evict_scratch);
                        victims.clear();
                        if let Err(e) =
                            self.mm
                                .plan_fetch_into(id, g, self.policy.as_ref(), &mut victims)
                        {
                            self.evict_scratch = victims;
                            return self.spill_guard(g, slot, step_id, e);
                        }
                        let evs = self.issue_evictions(g, step_id, &victims);
                        self.evict_scratch = victims;
                        let evs = evs?;
                        if evs > 0 {
                            self.plane_mut(slot).inflight[g] =
                                InFlight::Evicting { remaining: evs };
                            return Ok(true);
                        }
                        // A degraded route falls through to the host
                        // bounce below (resilience reroute path).
                        if self.plan.scheme.p2p && !self.route_degraded(src, g)? {
                            match self.mm.begin_p2p(id, g) {
                                Ok((_, bytes)) => {
                                    let label = self.tensor_sym(id)?;
                                    self.issue_recorded(
                                        RouteSel::P2p(src, g),
                                        bytes,
                                        Purpose::Move {
                                            gpu: g,
                                            step: step_id,
                                            tensor: id,
                                        },
                                        g,
                                        SpanKind::P2p,
                                        label,
                                    )?;
                                    self.plane_mut(slot).inflight[g] = InFlight::Moving;
                                    return Ok(true);
                                }
                                // Pinned on the peer or racing: stall.
                                Err(MemError::InvalidState { .. }) => {
                                    self.register_tensor_waiter(g, id);
                                    return Ok(false);
                                }
                                Err(e) => return self.spill_guard(g, slot, step_id, e),
                            }
                        }
                        // No p2p: bounce via host — swap it out of the
                        // peer first (§2: "only CPU-GPU swaps").
                        match self.mm.begin_swap_out(id) {
                            Ok((src, bytes)) => {
                                let label = self.tensor_sym(id)?;
                                self.issue_recorded(
                                    RouteSel::GpuToHost(src),
                                    bytes,
                                    Purpose::Demote {
                                        gpu: g,
                                        step: step_id,
                                        tensor: id,
                                    },
                                    src,
                                    SpanKind::SwapOut,
                                    label,
                                )?;
                                self.plane_mut(slot).inflight[g] = InFlight::WaitDemote;
                                return Ok(true);
                            }
                            Err(MemError::InvalidState { .. }) => {
                                self.register_tensor_waiter(g, id);
                                return Ok(false);
                            }
                            Err(e) => return self.spill_guard(g, slot, step_id, e),
                        }
                    }
                    Residency::OnHost => {
                        let mut victims = std::mem::take(&mut self.evict_scratch);
                        victims.clear();
                        if let Err(e) =
                            self.mm
                                .plan_fetch_into(id, g, self.policy.as_ref(), &mut victims)
                        {
                            self.evict_scratch = victims;
                            return self.spill_guard(g, slot, step_id, e);
                        }
                        let evs = self.issue_evictions(g, step_id, &victims);
                        self.evict_scratch = victims;
                        let evs = evs?;
                        if evs > 0 {
                            self.plane_mut(slot).inflight[g] =
                                InFlight::Evicting { remaining: evs };
                            return Ok(true);
                        }
                        let bytes = match self.mm.begin_swap_in(id, g) {
                            Ok(b) => b,
                            Err(e) => return self.spill_guard(g, slot, step_id, e),
                        };
                        let label = self.tensor_sym(id)?;
                        self.issue_recorded(
                            RouteSel::HostToGpu(g),
                            bytes,
                            Purpose::Move {
                                gpu: g,
                                step: step_id,
                                tensor: id,
                            },
                            g,
                            SpanKind::SwapIn,
                            label,
                        )?;
                        self.plane_mut(slot).inflight[g] = InFlight::Moving;
                        return Ok(true);
                    }
                    // In flight somewhere: stall until it settles.
                    Residency::MovingToDevice { .. } | Residency::MovingToHost { .. } => {
                        self.register_tensor_waiter(g, id);
                        return Ok(false);
                    }
                    Residency::Dead => {
                        return Err(ExecError::Plan(format!(
                            "task needs dead tensor {}",
                            self.mm.info(id)?.name
                        )))
                    }
                }
            } else {
                // Idempotence: a cancelled prefetch may already have
                // allocated this output. If a live tensor exists for
                // the key, fetch it like an input instead of leaking a
                // second allocation (the conversion is a flag on the
                // shared precompiled target, reset whenever the cursor
                // moves).
                let existing_alive = self.ids[kix].is_some_and(|id| {
                    self.mm
                        .info(id)
                        .is_ok_and(|i| !matches!(i.residency, Residency::Dead))
                });
                if existing_alive {
                    self.plane_mut(slot).front_converted[g] = true;
                    continue;
                }
                let cfg = self.plan.graph.config();
                let bytes = ct.rf.bytes(self.model, cfg.ubatch_size, cfg.opt_slots);
                if self.mm.free_bytes(g)? < bytes {
                    let mut victims = std::mem::take(&mut self.evict_scratch);
                    victims.clear();
                    if let Err(e) =
                        self.mm
                            .make_room_into(g, bytes, self.policy.as_ref(), &mut victims)
                    {
                        self.evict_scratch = victims;
                        return self.spill_guard(g, slot, step_id, e);
                    }
                    let evs = self.issue_evictions(g, step_id, &victims);
                    self.evict_scratch = victims;
                    let evs = evs?;
                    if evs > 0 {
                        self.plane_mut(slot).inflight[g] = InFlight::Evicting { remaining: evs };
                        return Ok(true);
                    }
                    // All victims dropped instantly; room is free now.
                }
                let name = name_of(replica, ct.rf);
                let sym = self.trace.intern(&name);
                self.counters.label_interns += 1;
                let id = match self.mm.alloc_on_device(name, bytes, ct.rf.class(), g) {
                    Ok(id) => id,
                    Err(e) => return self.spill_guard(g, slot, step_id, e),
                };
                self.set_label(id, sym);
                self.ids[kix] = Some(id);
                self.mm.pin(id)?;
                self.update_next_use(kix, seq, iter, replica, ct.rf)?;
                let plane = self.plane_mut(slot);
                plane.pinned[g].push(id);
                plane.t_cur[g] = t_cur + 1;
                plane.front_converted[g] = false;
                self.mutations += 1;
                continue;
            }
        }
    }

    fn start_compute(&mut self, g: usize, replica: usize, task: TaskId) -> Result<(), ExecError> {
        let iter = self.cur.iter[g];
        let t = self.plan.graph.task(task);
        // Jitter faults rescale the effective FLOP rate of this GPU.
        let secs = t.flops as f64 / (self.topo.gpu(g)?.flops * self.compute_rate[g]);
        let tag = self.next_compute_tag;
        self.next_compute_tag += 1;
        let six = replica * self.num_tasks + task;
        let label = match self.task_syms[six] {
            Some(s) => s,
            None => {
                let s = self.trace.intern(&task_label(replica, t.kind));
                self.counters.label_interns += 1;
                self.task_syms[six] = Some(s);
                s
            }
        };
        self.computes[g] = Some(ComputeRec {
            tag,
            start: self.sim.now(),
            label,
        });
        self.sim.submit_compute(g, secs, tag)?;
        self.mutations += 1;
        self.cur.inflight[g] = InFlight::Computing;
        self.emit(ExecEvent::TaskStarted {
            gpu: g,
            iter,
            replica,
            task,
        });
        Ok(())
    }

    /// How many local arrivals complete a collective barrier: the shard's
    /// replica count in a sharded run, all GPUs otherwise.
    fn collective_quorum(&self) -> usize {
        self.shard
            .as_ref()
            .map_or(self.q_bounds.len(), |s| s.local_n)
    }

    fn arrive_collective(&mut self, g: usize, iter: u32, pack: usize) -> Result<(), ExecError> {
        self.cur.inflight[g] = InFlight::Collective;
        self.mutations += 1;
        let cix = iter as usize * self.num_packs + pack;
        let slot = &mut self.collectives[cix];
        if !slot.active {
            *slot = CollSlot {
                active: true,
                arrived: 0,
                outstanding: 0,
            };
        }
        slot.arrived += 1;
        if (slot.arrived as usize) < self.collective_quorum() {
            return Ok(());
        }
        if let Some(ctx) = &self.shard {
            // Last local arrival: rendezvous with the peer shards, then
            // lift the barrier for everyone at the same virtual instant
            // via a GO timer at the globally latest arrival time. A GPU
            // only arrives here when its network is locally quiescent
            // (fetches settled and pinned, prefetch never crosses an
            // AllReduce), so delaying the hop issue to the global time
            // cannot reorder against any pending local event — the hop
            // timeline every shard then computes is the unsharded one.
            let barrier = std::sync::Arc::clone(&ctx.barrier);
            let (t_go, w_go) = barrier
                .arrive(
                    crate::shard::Round::Collective { iter, pack },
                    (self.sim.now(), self.sim.current_wave()),
                )
                .map_err(ExecError::ShardAborted)?;
            self.sim.set_timer_at_wave(
                t_go,
                SHARD_GO_TAG_BIAS + cix as u64,
                harmony_simulator::CONTROL_LANE,
                w_go,
            )?;
            return Ok(());
        }
        self.issue_collective_ring(iter, pack)
    }

    /// Issues the ring-exchange hops of a collective whose barrier has
    /// lifted: one hop per GPU of 2(N−1)/N · |dW|, ascending source. In a
    /// sharded run *every* shard issues all N hops (the hops are the
    /// shared global timeline); each shard then attributes each hop span
    /// to its owner lane at merge time.
    fn issue_collective_ring(&mut self, iter: u32, pack: usize) -> Result<(), ExecError> {
        let n = self.q_bounds.len();
        let cix = iter as usize * self.num_packs + pack;
        let label = self.trace.intern(&format!("allreduce p{pack} i{iter}"));
        self.counters.label_interns += 1;
        let grad_bytes: u64 = self.plan.graph.packs()[pack]
            .clone()
            .map(|l| self.model.layers[l].grad_bytes())
            .sum();
        let ring_bytes = 2 * (n as u64 - 1) * grad_bytes / n as u64;
        for src in 0..n {
            let dst = (src + 1) % n;
            self.issue_recorded(
                RouteSel::P2p(src, dst),
                ring_bytes,
                Purpose::Collective { iter, pack },
                src,
                SpanKind::Collective,
                label,
            )?;
            self.collectives[cix].outstanding += 1;
        }
        Ok(())
    }

    fn finish_collective(&mut self, iter: u32, pack: usize) -> Result<(), ExecError> {
        // Reset to inactive: a straggling completion for this barrier hits
        // the same "unknown collective" error the reference raises.
        self.collectives[iter as usize * self.num_packs + pack] = CollSlot::default();
        for g in 0..self.q_bounds.len() {
            // Sharded: foreign GPUs' steps live in their owner shard.
            if self.shard.as_ref().is_some_and(|s| !s.local[g]) {
                continue;
            }
            if !self.cur.live[g] {
                return Err(ExecError::Plan(format!(
                    "gpu{g} has no step at collective end"
                )));
            }
            match self.cur.item[g] {
                WorkItem::AllReduce { pack: p } if p == pack => {}
                other => {
                    return Err(ExecError::Plan(format!(
                        "gpu{g} at {other:?} during allreduce {pack}"
                    )))
                }
            }
            self.cur.live[g] = false;
            let mut pins = std::mem::take(&mut self.cur.pinned[g]);
            for id in pins.drain(..) {
                self.mm.unpin(id)?;
                // AllReduce rewrites the gradient buffers.
                self.mm.mark_dirty(id)?;
                self.wake_tensor_waiters(id);
            }
            self.cur.pinned[g] = pins;
        }
        // Every GPU's barrier lifted at once.
        self.wake_all();
        Ok(())
    }

    fn finish_task(&mut self, g: usize) -> Result<(), ExecError> {
        if !self.cur.live[g] {
            return Err(ExecError::Plan(format!("gpu{g} compute done with no step")));
        }
        let WorkItem::Task { replica, task } = self.cur.item[g] else {
            return Err(ExecError::Plan(format!(
                "gpu{g} compute completion for non-task item"
            )));
        };
        let iter = self.cur.iter[g];
        self.cur.live[g] = false;
        let mut pins = std::mem::take(&mut self.cur.pinned[g]);
        for &id in pins.iter() {
            self.mm.unpin(id)?;
            self.wake_tensor_waiters(id);
        }
        pins.clear();
        self.cur.pinned[g] = pins;
        let t = self.plan.graph.task(task);
        for &rf in &t.writes {
            let kix = self.ks.key_ix(iter, replica, rf);
            let id = self.tensor_id_at(kix, iter, replica, rf)?;
            self.mm.mark_dirty(id)?;
        }
        for &rf in &t.frees {
            let kix = self.ks.key_ix(iter, replica, rf);
            let id = self.tensor_id_at(kix, iter, replica, rf)?;
            self.mm.free(id)?;
            // Waiters stalled on a now-dead tensor must still advance (to
            // reach the same Dead-tensor error the dense loop would).
            self.wake_tensor_waiters(id);
        }
        self.set_done(iter, replica, task);
        self.wake_dep_waiters(iter, replica, task);
        self.emit(ExecEvent::TaskFinished {
            gpu: g,
            iter,
            replica,
            task,
        });
        Ok(())
    }

    fn handle(&mut self, completion: Completion) -> Result<(), ExecError> {
        match completion {
            Completion::Compute { gpu, tag } => {
                // At most one kernel per GPU: the tag cross-checks the
                // per-GPU slot (no keyed map on the completion path).
                let rec = match self.computes.get(gpu) {
                    Some(Some(rec)) if rec.tag == tag => {
                        let rec = *rec;
                        self.computes[gpu] = None;
                        rec
                    }
                    _ => return Err(ExecError::Plan(format!("unknown compute tag {tag}"))),
                };
                self.trace.record_sym(
                    rec.start,
                    self.sim.now(),
                    Some(gpu),
                    SpanKind::Compute,
                    rec.label,
                    self.sim.current_wave(),
                );
                self.finish_task(gpu)?;
                self.wake(gpu);
            }
            Completion::Transfer { id, tag } => {
                #[cfg(feature = "mutation_hooks")]
                let tag = if self.corrupt_one_gen {
                    self.corrupt_one_gen = false;
                    tag ^ (1 << 32)
                } else {
                    tag
                };
                // The tag IS the pooled record's handle: resolution is a
                // generation-checked index, and a stale or forged handle
                // is a typed error, never a misread of a recycled slot.
                let h = SlabHandle::from_bits(tag);
                let pt = self.transfers.remove(h)?;
                debug_assert_eq!(pt.xfer, id, "pooled record matches the completed transfer");
                self.trace.record_sym(
                    pt.start,
                    self.sim.now(),
                    Some(pt.lane),
                    pt.kind,
                    pt.label,
                    self.sim.current_wave(),
                );
                match pt.purpose {
                    Purpose::Eviction { gpu, step, tensor } => {
                        self.mm.finish_swap_out(tensor)?;
                        let slot = self.slot_of(gpu, step).ok_or_else(|| {
                            ExecError::Plan(format!("gpu{gpu} eviction for missing step"))
                        })?;
                        let plane = self.plane_mut(slot);
                        if let InFlight::Evicting { remaining } = &mut plane.inflight[gpu] {
                            *remaining -= 1;
                            if *remaining == 0 {
                                plane.inflight[gpu] = InFlight::Idle;
                            }
                        }
                        self.wake(gpu);
                        self.wake_tensor_waiters(tensor);
                    }
                    Purpose::Demote { gpu, step, tensor } => {
                        self.mm.finish_swap_out(tensor)?;
                        let slot = self.slot_of(gpu, step).ok_or_else(|| {
                            ExecError::Plan(format!("gpu{gpu} demote for missing step"))
                        })?;
                        let plane = self.plane_mut(slot);
                        if matches!(plane.inflight[gpu], InFlight::WaitDemote) {
                            plane.inflight[gpu] = InFlight::Idle;
                        }
                        self.wake(gpu);
                        self.wake_tensor_waiters(tensor);
                    }
                    Purpose::Move { gpu, step, tensor } => {
                        self.mm.finish_move_to_device(tensor)?;
                        self.mm.pin(tensor)?;
                        let slot = self.slot_of(gpu, step).ok_or_else(|| {
                            ExecError::Plan(format!("gpu{gpu} move for missing step"))
                        })?;
                        let plane = self.plane_mut(slot);
                        plane.pinned[gpu].push(tensor);
                        plane.t_cur[gpu] += 1;
                        plane.front_converted[gpu] = false;
                        plane.inflight[gpu] = InFlight::Idle;
                        self.wake(gpu);
                        self.wake_tensor_waiters(tensor);
                    }
                    Purpose::Collective { iter, pack } => {
                        // Sharded: hops on peer lanes complete here too
                        // (every shard simulates the full ring) but belong
                        // to the lane's owner in the merged event count.
                        if self.shard.as_ref().is_some_and(|s| !s.local[pt.lane]) {
                            self.shard_foreign_events += 1;
                        }
                        let cix = iter as usize * self.num_packs + pack;
                        let quorum = self.collective_quorum();
                        let slot = self
                            .collectives
                            .get_mut(cix)
                            .filter(|s| s.active)
                            .ok_or_else(|| {
                                ExecError::Plan(format!("unknown collective {pack}@{iter}"))
                            })?;
                        slot.outstanding -= 1;
                        if slot.outstanding == 0 && slot.arrived as usize == quorum {
                            self.finish_collective(iter, pack)?;
                        }
                    }
                    Purpose::Flush { tensor } => {
                        self.mm.finish_swap_out(tensor)?;
                        self.wake_tensor_waiters(tensor);
                    }
                }
            }
            Completion::Timer { tag } => {
                // Tags at/above the bias are resilience retries; the shard
                // band below it carries sharded-run control timers; below
                // the fault count they are injected faults; others inert.
                if tag >= RETRY_TAG_BIAS {
                    self.handle_retry_timer(tag)?;
                } else if self.shard.is_some() && tag >= SHARD_SYNC_TAG {
                    // Control timers exist only in sharded runs: always
                    // foreign to the merged event count. The sync tick is
                    // inert (it only advanced the clock); a GO tag lifts
                    // the collective barrier every shard agreed on.
                    self.shard_foreign_events += 1;
                    if tag >= SHARD_GO_TAG_BIAS {
                        let cix = (tag - SHARD_GO_TAG_BIAS) as usize;
                        let iter = (cix / self.num_packs) as u32;
                        let pack = cix % self.num_packs;
                        self.issue_collective_ring(iter, pack)?;
                    }
                } else if let Some(tf) = self.faults.get(tag as usize).copied() {
                    // Fault timers fire in every shard (shared fault list);
                    // shard 0 owns them in the merged count.
                    if self.shard.as_ref().is_some_and(|s| s.shard_index != 0) {
                        self.shard_foreign_events += 1;
                    }
                    self.apply_fault(tf.fault)?;
                    // A fault can unblock (or re-block) anything: capacity
                    // and rate changes have global reach. Rare, so the full
                    // wake is cheap; over-waking is always safe.
                    self.wake_all();
                }
            }
        }
        Ok(())
    }
}

/// Compiles the fetch-target list of one work item into the shared dense
/// target arena, returning its `[start, end)` range. Order and dedup are
/// the reference's exactly: reads first, then writes, first occurrence
/// wins; an allreduce targets its pack's gradient buffers for the replica
/// resident on `gpu`. Iteration is *not* baked in — every iteration's
/// instance of the item shares one compiled range, with the key
/// reconstructed from the running step's iteration at fetch time.
fn compile_targets(
    ct_items: &mut Vec<CTarget>,
    plan: &ExecutionPlan,
    gpu: usize,
    item: WorkItem,
) -> (u32, u32) {
    let start = ct_items.len() as u32;
    match item {
        WorkItem::Task { replica, task } => {
            let t = plan.graph.task(task);
            let mut seen: Vec<TensorRef> = Vec::new();
            for &rf in &t.reads {
                if !seen.contains(&rf) {
                    seen.push(rf);
                    ct_items.push(CTarget {
                        rf,
                        replica: replica as u32,
                        alloc: false,
                    });
                }
            }
            for &rf in &t.writes {
                if !seen.contains(&rf) {
                    seen.push(rf);
                    ct_items.push(CTarget {
                        rf,
                        replica: replica as u32,
                        alloc: true,
                    });
                }
            }
        }
        WorkItem::AllReduce { pack } => {
            let replica = gpu;
            for l in plan.graph.packs()[pack].clone() {
                ct_items.push(CTarget {
                    rf: TensorRef::Grad { layer: l },
                    replica: replica as u32,
                    alloc: false,
                });
            }
        }
    }
    (start, ct_items.len() as u32)
}

/// Loads a popped queue entry into lane `g` of a step plane. The pin list
/// is reused from the plane (cleared by retirement), so loading allocates
/// nothing.
fn load_step(plane: &mut StepPlane, g: usize, id: u64, qi: &QItem, targets_built: bool) {
    debug_assert!(!plane.live[g]);
    debug_assert!(plane.pinned[g].is_empty());
    plane.live[g] = true;
    plane.id[g] = id;
    plane.seq[g] = qi.seq;
    plane.iter[g] = qi.iter;
    plane.item[g] = qi.item;
    plane.t_cur[g] = qi.t_start;
    plane.t_end[g] = qi.t_end;
    plane.targets_built[g] = targets_built;
    plane.front_converted[g] = false;
    plane.inflight[g] = InFlight::Idle;
}

/// Tensor keys an item touches during iteration `iter` (for the
/// future-use table).
fn item_keys(plan: &ExecutionPlan, iter: u32, item: WorkItem) -> Vec<Key> {
    match item {
        WorkItem::Task { replica, task } => plan
            .graph
            .task(task)
            .touched()
            .into_iter()
            .map(|rf| key_of(iter, replica, rf))
            .collect(),
        WorkItem::AllReduce { pack } => plan.graph.packs()[pack]
            .clone()
            .flat_map(|l| {
                (0..plan.replicas).map(move |r| key_of(iter, r, TensorRef::Grad { layer: l }))
            })
            .collect(),
    }
}

fn name_of(replica: usize, rf: TensorRef) -> String {
    match rf {
        TensorRef::Weight { layer } => format!("r{replica}.L{layer}.W"),
        TensorRef::Grad { layer } => format!("r{replica}.L{layer}.dW"),
        TensorRef::OptState { layer } => format!("r{replica}.L{layer}.K"),
        TensorRef::Activation { layer, ubatch } => format!("r{replica}.L{layer}.Y.u{ubatch}"),
        TensorRef::ActGrad { layer, ubatch } => format!("r{replica}.L{layer}.dY.u{ubatch}"),
        TensorRef::Stash { layer, ubatch } => format!("r{replica}.L{layer}.stash.u{ubatch}"),
        TensorRef::WeightStash { layer, ubatch } => format!("r{replica}.L{layer}.Wstash.u{ubatch}"),
        TensorRef::Input { ubatch } => format!("r{replica}.input.u{ubatch}"),
    }
}

fn task_label(replica: usize, kind: harmony_taskgraph::TaskKind) -> String {
    use harmony_taskgraph::TaskKind::*;
    match kind {
        Forward { pack, ubatch } => format!("F p{pack} u{ubatch} r{replica}"),
        Loss { ubatch } => format!("Loss u{ubatch} r{replica}"),
        Backward { pack, ubatch } => format!("B p{pack} u{ubatch} r{replica}"),
        Update { pack } => format!("U p{pack} r{replica}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadConfig;
    use crate::dp::plan_baseline_dp;
    use harmony_models::{LayerClass, LayerSpec, ModelSpec};
    use harmony_topology::presets::{commodity_server, CommodityParams, GBPS};

    fn tiny_model() -> ModelSpec {
        ModelSpec {
            name: "tiny".to_string(),
            layers: vec![LayerSpec {
                name: "L0".to_string(),
                class: LayerClass::Other,
                params: 64,
                fwd_flops_per_sample: 128,
                out_elems_per_sample: 4,
                extra_stash_elems_per_sample: 4,
                in_elems_per_sample: 4,
            }],
            seq_len: 1,
        }
    }

    fn tiny_topo() -> Topology {
        commodity_server(CommodityParams {
            num_gpus: 1,
            gpus_per_switch: 1,
            pcie_bw: GBPS,
            host_uplink_bw: GBPS,
            gpu_mem: 1 << 20,
            gpu_flops: 1e9,
        })
        .unwrap()
    }

    fn tiny_workload() -> WorkloadConfig {
        WorkloadConfig {
            microbatches: 1,
            ubatch_size: 1,
            pack_size: 1,
            opt_slots: 0,
            group_size: None,
            recompute: false,
        }
    }

    /// Satellite of the wake-set rework: with zero observers attached,
    /// `emit_with` must not even *construct* the event (no boxing, no
    /// route-vector clones on the hot path).
    #[test]
    fn emit_with_skips_event_construction_without_observers() {
        let model = tiny_model();
        let topo = tiny_topo();
        let plan = plan_baseline_dp(&model, 1, &tiny_workload()).unwrap();
        let mut ex = SimExecutor::new(&topo, &model, &plan).unwrap();
        let mut constructed = false;
        ex.emit_with(|| {
            constructed = true;
            ExecEvent::RunFinished
        });
        assert!(!constructed, "event must not be built with no observers");
    }

    /// And the inverse: an attached observer both forces construction and
    /// sees the event.
    #[test]
    fn emit_with_builds_and_delivers_with_an_observer() {
        #[derive(Debug)]
        struct Counter(std::rc::Rc<std::cell::Cell<u32>>);
        impl ExecObserver for Counter {
            fn on_event(&mut self, _ctx: &ExecContext<'_>, _event: &ExecEvent) {
                self.0.set(self.0.get() + 1);
            }
        }
        let model = tiny_model();
        let topo = tiny_topo();
        let plan = plan_baseline_dp(&model, 1, &tiny_workload()).unwrap();
        let mut ex = SimExecutor::new(&topo, &model, &plan).unwrap();
        let seen = std::rc::Rc::new(std::cell::Cell::new(0));
        ex.attach_observer(Box::new(Counter(seen.clone())));
        let mut constructed = false;
        ex.emit_with(|| {
            constructed = true;
            ExecEvent::RunFinished
        });
        assert!(constructed);
        assert_eq!(seen.get(), 1);
    }
}
