//! Generational slab arena for the executor's per-event records.
//!
//! The wake-set event loop keys every in-flight record (pending
//! transfers, compute receipts) by an opaque `u64` tag that round-trips
//! through the simulator. Storing those records in a keyed `HashMap`
//! costs a hash probe per event; this slab replaces the probe with a
//! bounds-checked array index. A [`SlabHandle`] packs the slot index and
//! a per-slot *generation* into one `u64`: the generation is bumped on
//! every removal, so a handle that outlives its record — a use-after-free
//! in index form — is detected as a typed [`SlabError::Stale`] instead of
//! silently reading whatever record was recycled into the slot.
//!
//! Freed slots go on a free list and are reused LIFO, so steady-state
//! operation allocates nothing: the slab's footprint is bounded by the
//! high-water mark of concurrently live records (plan-sized — transfers
//! in flight — never event-count-sized). [`Slab::high_water`] and
//! [`Slab::fresh_allocs`] expose that contract structurally for the
//! executor's counters.

/// A generational index into a [`Slab`]: slot in the low 32 bits,
/// generation in the high 32. The packed form ([`SlabHandle::to_bits`])
/// is what the executor ships through simulator tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlabHandle {
    slot: u32,
    gen: u32,
}

impl SlabHandle {
    /// Packs the handle into a single `u64` (slot low, generation high).
    pub fn to_bits(self) -> u64 {
        ((self.gen as u64) << 32) | self.slot as u64
    }

    /// Rebuilds a handle from [`SlabHandle::to_bits`]. Any `u64` parses;
    /// validity is checked by the slab on use (a forged or corrupted
    /// value surfaces as a typed [`SlabError`], never a silent misread).
    pub fn from_bits(bits: u64) -> Self {
        SlabHandle {
            slot: bits as u32,
            gen: (bits >> 32) as u32,
        }
    }

    /// The slot index.
    pub fn slot(self) -> u32 {
        self.slot
    }

    /// The generation this handle expects its slot to be at.
    pub fn generation(self) -> u32 {
        self.gen
    }
}

/// Typed failure of a slab access — the generational-index safety check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlabError {
    /// The slot exists but has been recycled since the handle was issued:
    /// the handle's generation does not match the slot's.
    Stale {
        /// Slot the handle pointed at.
        slot: u32,
        /// Generation the slot is currently at.
        expected: u32,
        /// Generation the handle carried.
        found: u32,
    },
    /// The slot matches the handle's generation but holds no value (only
    /// reachable with a forged handle — normal removal bumps the
    /// generation).
    Vacant {
        /// Slot the handle pointed at.
        slot: u32,
    },
    /// The slot index is past the end of the slab.
    OutOfBounds {
        /// Slot the handle pointed at.
        slot: u32,
        /// Number of slots the slab has.
        len: u32,
    },
}

impl std::fmt::Display for SlabError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlabError::Stale {
                slot,
                expected,
                found,
            } => write!(
                f,
                "stale handle for slot {slot}: generation {found}, slot is at {expected}"
            ),
            SlabError::Vacant { slot } => write!(f, "slot {slot} is vacant"),
            SlabError::OutOfBounds { slot, len } => {
                write!(f, "slot {slot} out of bounds for {len}-slot slab")
            }
        }
    }
}

impl std::error::Error for SlabError {}

#[derive(Debug)]
struct Entry<T> {
    gen: u32,
    val: Option<T>,
}

/// Generational slab arena. See module docs.
#[derive(Debug)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    live: u32,
    high_water: u32,
    fresh_allocs: u64,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            live: 0,
            high_water: 0,
            fresh_allocs: 0,
        }
    }

    /// An empty slab with room for `cap` entries before growing.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            entries: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            live: 0,
            high_water: 0,
            fresh_allocs: 0,
        }
    }

    /// Inserts `val`, reusing a freed slot when one exists (LIFO), and
    /// returns the handle that retrieves it.
    pub fn insert(&mut self, val: T) -> SlabHandle {
        let handle = match self.free.pop() {
            Some(slot) => {
                let e = &mut self.entries[slot as usize];
                debug_assert!(e.val.is_none(), "free-listed slot must be vacant");
                e.val = Some(val);
                SlabHandle { slot, gen: e.gen }
            }
            None => {
                let slot = self.entries.len() as u32;
                self.fresh_allocs += 1;
                self.entries.push(Entry {
                    gen: 0,
                    val: Some(val),
                });
                SlabHandle { slot, gen: 0 }
            }
        };
        self.live += 1;
        if self.live > self.high_water {
            self.high_water = self.live;
        }
        handle
    }

    fn check(&self, h: SlabHandle) -> Result<usize, SlabError> {
        let Some(e) = self.entries.get(h.slot as usize) else {
            return Err(SlabError::OutOfBounds {
                slot: h.slot,
                len: self.entries.len() as u32,
            });
        };
        if e.gen != h.gen {
            return Err(SlabError::Stale {
                slot: h.slot,
                expected: e.gen,
                found: h.gen,
            });
        }
        if e.val.is_none() {
            return Err(SlabError::Vacant { slot: h.slot });
        }
        Ok(h.slot as usize)
    }

    /// The value behind `h`, or the typed error describing why the handle
    /// no longer (or never did) resolve.
    pub fn get(&self, h: SlabHandle) -> Result<&T, SlabError> {
        let ix = self.check(h)?;
        Ok(self.entries[ix]
            .val
            .as_ref()
            .expect("check() verified occupancy"))
    }

    /// Mutable access to the value behind `h`.
    pub fn get_mut(&mut self, h: SlabHandle) -> Result<&mut T, SlabError> {
        let ix = self.check(h)?;
        Ok(self.entries[ix]
            .val
            .as_mut()
            .expect("check() verified occupancy"))
    }

    /// Removes and returns the value behind `h`, bumping the slot's
    /// generation so every outstanding copy of `h` turns stale.
    pub fn remove(&mut self, h: SlabHandle) -> Result<T, SlabError> {
        let ix = self.check(h)?;
        let e = &mut self.entries[ix];
        let val = e.val.take().expect("check() verified occupancy");
        e.gen = e.gen.wrapping_add(1);
        self.free.push(h.slot);
        self.live -= 1;
        Ok(val)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live as usize
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Peak number of simultaneously live entries over the slab's life.
    pub fn high_water(&self) -> u32 {
        self.high_water
    }

    /// Slots ever grown (inserts not served from the free list). Equals
    /// [`Slab::high_water`] in steady state — the structural proof that
    /// per-event traffic recycles slots instead of allocating.
    pub fn fresh_allocs(&self) -> u64 {
        self.fresh_allocs
    }

    /// Returns the slab to its freshly-constructed state while keeping
    /// the entry and free-list capacity: all slots (and their
    /// generations) are discarded, so the next insert mints slot 0 at
    /// generation 0 exactly as a new slab would. This is the pooled-run
    /// recycling contract (DESIGN §14): handles issued after a reset are
    /// indistinguishable from a fresh slab's, so a recycled executor's
    /// simulator tags are byte-identical to a fresh one's. Handles issued
    /// *before* the reset must not be used again — they may alias
    /// re-minted ones — which holds for the executor because a run ends
    /// with its slab drained.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.free.clear();
        self.live = 0;
        self.high_water = 0;
        self.fresh_allocs = 0;
    }

    /// Live `(handle, value)` pairs in ascending slot order.
    pub fn iter(&self) -> impl Iterator<Item = (SlabHandle, &T)> {
        self.entries.iter().enumerate().filter_map(|(slot, e)| {
            e.val.as_ref().map(|v| {
                (
                    SlabHandle {
                        slot: slot as u32,
                        gen: e.gen,
                    },
                    v,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_round_trip_through_bits() {
        let h = SlabHandle { slot: 7, gen: 3 };
        assert_eq!(SlabHandle::from_bits(h.to_bits()), h);
        assert_eq!(h.slot(), 7);
        assert_eq!(h.generation(), 3);
    }

    #[test]
    fn removal_staleness_is_typed() {
        let mut s = Slab::new();
        let a = s.insert("a");
        assert_eq!(s.remove(a), Ok("a"));
        // The slot is recycled at a new generation; the old handle is
        // stale, not an alias of the new record.
        let b = s.insert("b");
        assert_eq!(b.slot(), a.slot());
        assert_eq!(
            s.get(a),
            Err(SlabError::Stale {
                slot: a.slot(),
                expected: 1,
                found: 0
            })
        );
        assert_eq!(s.get(b), Ok(&"b"));
    }

    #[test]
    fn high_water_and_fresh_allocs_track_concurrency_not_throughput() {
        let mut s = Slab::new();
        for _ in 0..100 {
            let h = s.insert(1u32);
            s.remove(h).unwrap();
        }
        assert_eq!(s.high_water(), 1);
        assert_eq!(s.fresh_allocs(), 1, "one slot, recycled 100 times");
        assert!(s.is_empty());
    }

    #[test]
    fn reset_slab_mints_fresh_identical_handles() {
        let mut recycled = Slab::new();
        for _ in 0..3 {
            let h = recycled.insert(9u32);
            recycled.remove(h).unwrap();
        }
        recycled.reset();
        let mut fresh = Slab::new();
        for i in 0..4u32 {
            assert_eq!(recycled.insert(i).to_bits(), fresh.insert(i).to_bits());
        }
        assert_eq!(recycled.high_water(), fresh.high_water());
        assert_eq!(recycled.fresh_allocs(), fresh.fresh_allocs());
    }

    #[test]
    fn out_of_bounds_and_vacant_are_distinct() {
        let mut s: Slab<u32> = Slab::new();
        let h = SlabHandle::from_bits(5);
        assert_eq!(s.get(h), Err(SlabError::OutOfBounds { slot: 5, len: 0 }));
        let a = s.insert(1);
        s.remove(a).unwrap();
        // Forged handle at the *current* generation of a vacant slot.
        let forged = SlabHandle { slot: 0, gen: 1 };
        assert_eq!(s.get(forged), Err(SlabError::Vacant { slot: 0 }));
    }
}
