//! Pipeline-parallel planners: baseline 1F1B (PipeDream-style) with
//! per-GPU virtualization vs Harmony-PP (Fig 4's grouped schedule).

use std::ops::Range;

use harmony_models::ModelSpec;
use harmony_taskgraph::{GraphError, TaskGraph, TaskKind};

use crate::config::{SchemeConfig, WorkloadConfig};
use crate::plan::{ExecutionPlan, WorkItem};

/// What a stage partitioner balances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionObjective {
    /// Compute only — how traditional pipeline systems cut stages
    /// (PipeDream/GPipe), which is exactly why their *memory* is
    /// imbalanced (§2 inefficiency 4).
    Compute,
    /// Harmony's multi-dimensional balance: compute + memory (weights,
    /// gradients, optimizer state, stash) jointly.
    MultiDim,
}

/// Splits pack indices `0..np` into `n` contiguous stages minimising the
/// maximum per-stage load (classic linear-partition DP). Returns one
/// (possibly empty) range per stage.
pub fn partition_packs(
    graph: &TaskGraph,
    model: &ModelSpec,
    n: usize,
    w: &WorkloadConfig,
    m_total: usize,
    objective: PartitionObjective,
) -> Vec<Range<usize>> {
    let np = graph.packs().len();
    if n == 0 {
        return Vec::new();
    }
    let loads: Vec<f64> = (0..np)
        .map(|p| pack_load(graph, model, p, w, m_total, objective))
        .collect();
    // DP over prefix sums: cost[i][k] = min over j of max(cost[j][k-1], sum(j..i)).
    let mut prefix = vec![0.0f64; np + 1];
    for (i, l) in loads.iter().enumerate() {
        prefix[i + 1] = prefix[i] + l;
    }
    let seg = |a: usize, b: usize| prefix[b] - prefix[a];
    let inf = f64::INFINITY;
    let mut cost = vec![vec![inf; n + 1]; np + 1];
    let mut cut = vec![vec![0usize; n + 1]; np + 1];
    cost[0][0] = 0.0;
    for k in 1..=n {
        for i in 0..=np {
            for j in 0..=i {
                let c = cost[j][k - 1].max(seg(j, i));
                if c < cost[i][k] {
                    cost[i][k] = c;
                    cut[i][k] = j;
                }
            }
        }
    }
    // Reconstruct.
    let mut bounds = vec![np];
    let mut i = np;
    for k in (1..=n).rev() {
        i = cut[i][k];
        bounds.push(i);
    }
    bounds.reverse();
    (0..n).map(|s| bounds[s]..bounds[s + 1]).collect()
}

fn pack_load(
    graph: &TaskGraph,
    model: &ModelSpec,
    pack: usize,
    w: &WorkloadConfig,
    m_total: usize,
    objective: PartitionObjective,
) -> f64 {
    let range = &graph.packs()[pack];
    let flops: f64 = range
        .clone()
        .map(|l| model.layers[l].fwd_flops(w.ubatch_size) as f64 * 3.0)
        .sum();
    match objective {
        PartitionObjective::Compute => flops,
        PartitionObjective::MultiDim => {
            let mem: f64 = range
                .clone()
                .map(|l| {
                    (l_state_bytes(model, l, w.opt_slots)
                        + model.layers[l].stash_bytes(w.ubatch_size) * m_total as u64)
                        as f64
                })
                .sum();
            // Normalise each dimension by its model-wide total so neither
            // dominates, then weight equally.
            let total_flops: f64 = (0..model.layers.len())
                .map(|l| model.layers[l].fwd_flops(w.ubatch_size) as f64 * 3.0)
                .sum();
            let total_mem: f64 = (0..model.layers.len())
                .map(|l| {
                    (l_state_bytes(model, l, w.opt_slots)
                        + model.layers[l].stash_bytes(w.ubatch_size) * m_total as u64)
                        as f64
                })
                .sum();
            flops / total_flops.max(1.0) + mem / total_mem.max(1.0)
        }
    }
}

fn l_state_bytes(model: &ModelSpec, l: usize, opt_slots: u64) -> u64 {
    let layer = &model.layers[l];
    layer.weight_bytes() + layer.grad_bytes() + layer.opt_state_bytes(opt_slots)
}

fn stage_state_bytes(graph: &TaskGraph, model: &ModelSpec, stage: &Range<usize>, opt: u64) -> u64 {
    stage
        .clone()
        .flat_map(|p| graph.packs()[p].clone())
        .map(|l| l_state_bytes(model, l, opt))
        .sum()
}

fn stage_weight_bytes(graph: &TaskGraph, model: &ModelSpec, stage: &Range<usize>) -> u64 {
    stage
        .clone()
        .flat_map(|p| graph.packs()[p].clone())
        .map(|l| model.layers[l].weight_bytes())
        .sum()
}

fn stage_stash_per_ubatch(
    graph: &TaskGraph,
    model: &ModelSpec,
    stage: &Range<usize>,
    ub: u64,
) -> u64 {
    stage
        .clone()
        .flat_map(|p| graph.packs()[p].clone())
        .map(|l| model.layers[l].stash_bytes(ub))
        .sum()
}

/// The pipeline-parallel scheme families one planner body serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PpFlavor {
    /// PipeDream-style 1F1B with per-GPU virtualization, no stashing of
    /// weight versions (backward reads the live weights).
    Baseline,
    /// Harmony-PP: grouped sweeps, JIT updates, p2p handoffs.
    Harmony,
    /// 1F1B with PipeDream weight stashing: each in-flight microbatch
    /// carries a stashed weight copy from its forward to its backward.
    Pipe1F1B,
}

/// Baseline pipeline parallelism: compute-balanced contiguous stages, the
/// 1F1B (one-forward-one-backward) schedule of PipeDream, per-GPU memory
/// virtualization, updates at the end of the iteration. Stage `s` keeps up
/// to `S − s` microbatches in flight, so the head stages stash the most —
/// the memory skew of Fig 2(c).
pub fn plan_baseline_pp(
    model: &ModelSpec,
    n_gpus: usize,
    w: &WorkloadConfig,
) -> Result<ExecutionPlan, GraphError> {
    plan_pp(model, n_gpus, w, PpFlavor::Baseline)
}

/// Harmony-PP: multi-dimensionally balanced stages, input-batch grouping
/// inside each stage (a pack runs all microbatches back-to-back, Fig 4),
/// JIT per-pack updates, p2p stage handoffs, clean-drop evictions.
pub fn plan_harmony_pp(
    model: &ModelSpec,
    n_gpus: usize,
    w: &WorkloadConfig,
) -> Result<ExecutionPlan, GraphError> {
    plan_pp(model, n_gpus, w, PpFlavor::Harmony)
}

/// 1F1B with PipeDream weight stashing: the baseline 1F1B schedule, but
/// every microbatch's forward stashes the weight version it used and its
/// backward differentiates against that copy (the stashed-weight tensors'
/// lifetimes span exactly the in-flight microbatch window). The extra
/// per-stage footprint is `in_flight × stage weights` — the memory cost
/// PipeDream pays for update semantics without pipeline flushes.
pub fn plan_pipe_1f1b(
    model: &ModelSpec,
    n_gpus: usize,
    w: &WorkloadConfig,
) -> Result<ExecutionPlan, GraphError> {
    plan_pp(model, n_gpus, w, PpFlavor::Pipe1F1B)
}

fn plan_pp(
    model: &ModelSpec,
    n_gpus: usize,
    w: &WorkloadConfig,
    flavor: PpFlavor,
) -> Result<ExecutionPlan, GraphError> {
    let harmony = flavor == PpFlavor::Harmony;
    let m_total = w.microbatches * n_gpus;
    let graph = TaskGraph::build(
        model,
        harmony_taskgraph::GraphConfig {
            weight_stash: flavor == PpFlavor::Pipe1F1B,
            ..w.graph_config(m_total)
        },
    )?;
    let objective = if harmony {
        PartitionObjective::MultiDim
    } else {
        PartitionObjective::Compute
    };
    let stages = partition_packs(&graph, model, n_gpus, w, m_total, objective);
    let s_count = stages.len();
    let t = |kind| WorkItem::Task {
        replica: 0,
        task: graph.id_of(kind).expect("task exists by construction"),
    };
    let fwd_stage = |q: &mut Vec<WorkItem>, stage: &Range<usize>, u: usize| {
        for p in stage.clone() {
            q.push(t(TaskKind::Forward { pack: p, ubatch: u }));
        }
    };
    let bwd_stage = |q: &mut Vec<WorkItem>, stage: &Range<usize>, u: usize| {
        for p in stage.clone().rev() {
            q.push(t(TaskKind::Backward { pack: p, ubatch: u }));
        }
    };

    let mut queues = Vec::with_capacity(s_count);
    let mut demand = Vec::with_capacity(s_count);
    for (s, stage) in stages.iter().enumerate() {
        let mut q = Vec::new();
        let is_last = s == s_count - 1;
        if harmony {
            // Grouped sweeps: each pack runs a *group* of microbatches
            // back-to-back (input-batch grouping); groups pipeline across
            // stages. group = m_total reproduces the §3 analytical regime;
            // smaller groups restore stage overlap at the cost of more
            // weight swap-ins — the §4 tango, explored by the tuner.
            let gsz = w.effective_group(m_total);
            let groups: Vec<Range<usize>> = (0..m_total)
                .step_by(gsz)
                .map(|s| s..(s + gsz).min(m_total))
                .collect();
            for g in &groups {
                for p in stage.clone() {
                    for u in g.clone() {
                        q.push(t(TaskKind::Forward { pack: p, ubatch: u }));
                    }
                }
                if is_last {
                    for u in g.clone() {
                        q.push(t(TaskKind::Loss { ubatch: u }));
                    }
                }
            }
            for (gi, g) in groups.iter().enumerate().rev() {
                for p in stage.clone().rev() {
                    for u in g.clone() {
                        q.push(t(TaskKind::Backward { pack: p, ubatch: u }));
                    }
                    if gi == 0 {
                        q.push(t(TaskKind::Update { pack: p })); // JIT
                    }
                }
            }
        } else {
            // 1F1B: warmup forwards, steady alternation, drain backwards.
            let warmup = (s_count - 1 - s).min(m_total);
            for u in 0..warmup {
                fwd_stage(&mut q, stage, u);
            }
            for i in 0..(m_total - warmup) {
                let uf = warmup + i;
                fwd_stage(&mut q, stage, uf);
                if is_last {
                    q.push(t(TaskKind::Loss { ubatch: uf }));
                }
                bwd_stage(&mut q, stage, i);
            }
            for u in (m_total - warmup)..m_total {
                bwd_stage(&mut q, stage, u);
            }
            for p in stage.clone().rev() {
                q.push(t(TaskKind::Update { pack: p }));
            }
        }
        // Logical demand: per-stage state + in-flight stashes (+ one
        // stashed weight copy per in-flight microbatch under 1F1B weight
        // stashing).
        let in_flight = if harmony {
            m_total as u64
        } else {
            (s_count - s).min(m_total) as u64
        };
        let weight_stash_demand = if flavor == PpFlavor::Pipe1F1B {
            stage_weight_bytes(&graph, model, stage) * in_flight
        } else {
            0
        };
        demand.push(
            stage_state_bytes(&graph, model, stage, w.opt_slots)
                + stage_stash_per_ubatch(&graph, model, stage, w.ubatch_size) * in_flight
                + weight_stash_demand,
        );
        queues.push(q);
    }
    let name = match flavor {
        PpFlavor::Harmony => "harmony-pp",
        PpFlavor::Baseline => "baseline-pp",
        PpFlavor::Pipe1F1B => "pipe-1f1b",
    };
    Ok(ExecutionPlan {
        name: format!("{name}(N={n_gpus},m={m_total})"),
        graph,
        replicas: 1,
        queues,
        scheme: if harmony {
            SchemeConfig::harmony(name)
        } else {
            // Baseline PP (and 1F1B) still hands activations to the next
            // stage over p2p when they are resident — PipeDream-style
            // direct sends — but lacks cleanliness tracking and next-use
            // hints.
            let mut s = SchemeConfig::baseline(name);
            s.p2p = true;
            s
        },
        samples_per_iteration: m_total as u64 * w.ubatch_size,
        demand_bytes: demand,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_models::TransformerConfig;

    fn workload() -> WorkloadConfig {
        WorkloadConfig {
            microbatches: 2,
            ubatch_size: 2,
            pack_size: 1,
            opt_slots: 2,
            group_size: None,
            recompute: false,
        }
    }

    fn model() -> ModelSpec {
        TransformerConfig::tiny().build()
    }

    #[test]
    fn partition_covers_all_packs_contiguously() {
        let m = model();
        let graph = TaskGraph::build(&m, workload().graph_config(4)).unwrap();
        for obj in [PartitionObjective::Compute, PartitionObjective::MultiDim] {
            let stages = partition_packs(&graph, &m, 3, &workload(), 4, obj);
            assert_eq!(stages.len(), 3);
            assert_eq!(stages[0].start, 0);
            assert_eq!(stages.last().unwrap().end, graph.packs().len());
            for w in stages.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }

    #[test]
    fn partition_balances_uniform_loads() {
        let m = model();
        let graph = TaskGraph::build(&m, workload().graph_config(4)).unwrap();
        let np = graph.packs().len();
        let stages = partition_packs(&graph, &m, 2, &workload(), 4, PartitionObjective::Compute);
        let sizes: Vec<usize> = stages.iter().map(|r| r.len()).collect();
        // Near-even split (within the largest single pack).
        assert!(sizes[0].abs_diff(sizes[1]) <= np / 2, "sizes {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), np);
    }

    #[test]
    fn both_pp_plans_validate() {
        let m = model();
        for plan in [
            plan_baseline_pp(&m, 2, &workload()).unwrap(),
            plan_harmony_pp(&m, 2, &workload()).unwrap(),
        ] {
            plan.validate().unwrap();
            assert_eq!(plan.replicas, 1);
            assert_eq!(plan.queues.len(), 2);
            // m_total = 2 GPUs × 2 = 4 microbatches of 2 samples.
            assert_eq!(plan.samples_per_iteration, 8);
        }
    }

    #[test]
    fn baseline_head_stage_demand_exceeds_tail() {
        // Fig 2(c): 1F1B head stages stash more microbatches in flight.
        // A uniform model isolates the in-flight effect from layer skew.
        let layers = (0..8)
            .map(|i| harmony_models::LayerSpec {
                name: format!("l{i}"),
                class: harmony_models::LayerClass::Other,
                params: 1000,
                fwd_flops_per_sample: 2000,
                out_elems_per_sample: 100,
                extra_stash_elems_per_sample: 400,
                in_elems_per_sample: 100,
            })
            .collect();
        let m = ModelSpec {
            name: "uniform".to_string(),
            layers,
            seq_len: 1,
        };
        let mut w = workload();
        w.microbatches = 2;
        let plan = plan_baseline_pp(&m, 4, &w).unwrap();
        let d = &plan.demand_bytes;
        assert!(
            d[0] > d[3],
            "head demand {} must exceed tail {}",
            d[0],
            d[3]
        );
        // Monotone non-increasing head → tail.
        for pair in d.windows(2) {
            assert!(pair[0] >= pair[1], "demand {d:?} not monotone");
        }
    }

    #[test]
    fn harmony_pp_groups_microbatches_per_pack() {
        let m = model();
        let plan = plan_harmony_pp(&m, 2, &workload()).unwrap();
        let q = &plan.queues[0];
        // First items: F(pack0, u0..3) back-to-back.
        for (u, item) in q.iter().take(4).enumerate() {
            match item {
                WorkItem::Task { task, .. } => assert_eq!(
                    plan.graph.task(*task).kind,
                    TaskKind::Forward { pack: 0, ubatch: u }
                ),
                _ => panic!("expected forward"),
            }
        }
    }

    #[test]
    fn baseline_1f1b_interleaves_fwd_and_bwd() {
        let m = model();
        let mut w = workload();
        w.microbatches = 3; // m_total = 6 on 2 GPUs
        let plan = plan_baseline_pp(&m, 2, &w).unwrap();
        // Stage 0 has warmup 1: F(u0) then F(u1), B(u0), F(u2), B(u1)...
        let kinds: Vec<TaskKind> = plan.queues[0]
            .iter()
            .filter_map(|i| match i {
                WorkItem::Task { task, .. } => Some(plan.graph.task(*task).kind),
                _ => None,
            })
            .collect();
        let first_b = kinds
            .iter()
            .position(|k| matches!(k, TaskKind::Backward { .. }))
            .unwrap();
        let last_f = kinds
            .iter()
            .rposition(|k| matches!(k, TaskKind::Forward { .. }))
            .unwrap();
        assert!(
            first_b < last_f,
            "1F1B must interleave: first backward at {first_b}, last forward at {last_f}"
        );
    }

    #[test]
    fn pp_plans_have_no_collectives() {
        let m = model();
        let plan = plan_harmony_pp(&m, 3, &workload()).unwrap();
        for q in &plan.queues {
            assert!(q.iter().all(|i| !matches!(i, WorkItem::AllReduce { .. })));
        }
    }

    #[test]
    fn single_stage_pp_degenerates_gracefully() {
        let m = model();
        let plan = plan_baseline_pp(&m, 1, &workload()).unwrap();
        plan.validate().unwrap();
        assert_eq!(plan.queues.len(), 1);
    }
}
