//! Differential checking of the executor's event loop: the wake-set
//! fast path (default) against the dense reference loop
//! (`SimExecutor::use_dense_advance`, behind `harmony-sched`'s
//! `dense_advance` feature), which re-advances every GPU after every
//! simulator event.
//!
//! The two loops must be **byte-identical** on everything a run
//! produces: the trace's JSON export and the run summary's JSON export
//! (with the wall-clock `elapsed_secs` zeroed on both sides — it is
//! host measurement noise, not part of a run's identity). Errors must
//! match too: if one mode fails, the other must fail with the same
//! message. The proptest in `tests/execdiff_proptest.rs` feeds this
//! with random models × schemes × fault plans × prefetch settings.

use harmony::simulate::{self, SchemeKind};
use harmony_models::ModelSpec;
use harmony_sched::{
    run_sharded, ExecCounters, ExecError, ShardReport, ShardRunConfig, SimExecutor, TimedFault,
    WorkloadConfig,
};
use harmony_topology::Topology;
use harmony_trace::{summary::RunSummary, Trace};

/// What one matched dense-vs-fast run produced.
#[derive(Debug, Clone)]
pub struct ExecDiffOutcome {
    /// Length of the (identical) trace JSON in bytes; 0 on matched errors.
    pub trace_json_bytes: usize,
    /// Event-loop counters of the wake-set run.
    pub fast: ExecCounters,
    /// Event-loop counters of the dense-reference run.
    pub dense: ExecCounters,
    /// The common error message when both modes failed identically.
    pub error: Option<String>,
}

/// One differential configuration: everything needed to plan and run a
/// scheme twice.
#[derive(Debug, Clone)]
pub struct ExecDiffCase<'a> {
    /// Scheme under test.
    pub scheme: SchemeKind,
    /// Model to plan.
    pub model: &'a ModelSpec,
    /// Server to run on.
    pub topo: &'a Topology,
    /// Workload shape.
    pub workload: &'a WorkloadConfig,
    /// Timed faults injected into both runs.
    pub faults: &'a [TimedFault],
    /// Enable prefetch/double-buffering (exercises the cancel-retry
    /// poll path, the subtlest wake-set case).
    pub prefetch: bool,
    /// Back-to-back iterations.
    pub iterations: u32,
    /// Arm the resilience layer with this backoff seed
    /// ([`SimExecutor::enable_resilience`]): post-fault capacity
    /// shortfalls spill-and-retry, degraded-link p2p reroutes. `None`
    /// runs without the layer.
    pub resilience: Option<u64>,
}

pub(crate) type ModeResult = Result<(RunSummary, Trace, ExecCounters), ExecError>;

/// Plans and runs `case` once, in the dense reference loop when `dense`
/// is set and the wake-set loop otherwise. Public so the bench crate
/// can time the two loops back-to-back in the same process: an
/// absolute events/s record is hostage to host weather, but a
/// same-moment fast-vs-dense ratio is not.
pub fn run_mode(case: &ExecDiffCase<'_>, dense: bool) -> ModeResult {
    let mut plan = simulate::plan(case.scheme, case.model, case.topo, case.workload)?;
    if case.prefetch {
        plan.scheme = plan.scheme.clone().with_prefetch();
        plan.name = format!("{}+prefetch", plan.name);
    }
    let mut exec = SimExecutor::with_iterations(case.topo, case.model, &plan, case.iterations)?;
    if !case.faults.is_empty() {
        exec.inject_faults(case.faults)?;
    }
    if let Some(seed) = case.resilience {
        exec.enable_resilience(seed);
    }
    if dense {
        exec.use_dense_advance();
    }
    exec.run_counted()
}

/// Plans and runs `case` through the sharded executor
/// ([`harmony_sched::run_sharded`], DESIGN §12), configured identically
/// to [`run_mode`]. `shards` is the *requested* count — the runner clamps
/// to the topology's contention atoms and reports what actually ran.
pub fn run_sharded_mode(
    case: &ExecDiffCase<'_>,
    shards: usize,
) -> Result<(RunSummary, Trace, ShardReport), ExecError> {
    let mut plan = simulate::plan(case.scheme, case.model, case.topo, case.workload)?;
    if case.prefetch {
        plan.scheme = plan.scheme.clone().with_prefetch();
        plan.name = format!("{}+prefetch", plan.name);
    }
    run_sharded(
        case.topo,
        case.model,
        &plan,
        &ShardRunConfig {
            iterations: case.iterations,
            shards,
            faults: case.faults,
            resilience: case.resilience,
        },
    )
}

/// Runs `case` through the wake-set loop and the dense reference and
/// checks byte-identical results, or returns a message naming the first
/// divergence.
pub fn check_dense_vs_fast(case: &ExecDiffCase<'_>) -> Result<ExecDiffOutcome, String> {
    let fast = run_mode(case, false);
    let dense = run_mode(case, true);
    compare_modes(fast, dense, "fast", "dense")
}

/// Runs `case` sharded `shards` ways and unsharded and checks the merged
/// output byte-identical to the whole run (same contract as
/// [`check_dense_vs_fast`]: trace JSON, summary JSON with `elapsed_secs`
/// zeroed, and matched error strings when both fail). The outcome's
/// `fast` counters are the sharded run's merged counters, `dense` the
/// unsharded run's.
pub fn check_sharded_vs_unsharded(
    case: &ExecDiffCase<'_>,
    shards: usize,
) -> Result<ExecDiffOutcome, String> {
    let sharded = run_sharded_mode(case, shards).map(|(s, t, rep)| (s, t, rep.counters));
    let whole = run_mode(case, false);
    compare_modes(sharded, whole, "sharded", "unsharded")
}

/// Byte-compares two mode results (see [`check_dense_vs_fast`] for the
/// contract); `a_name`/`b_name` label the sides in divergence messages.
/// Shared with `memdiff`, whose full-run differential has the identical
/// contract (only the reference core under test differs).
pub(crate) fn compare_modes(
    a: ModeResult,
    b: ModeResult,
    a_name: &str,
    b_name: &str,
) -> Result<ExecDiffOutcome, String> {
    match (a, b) {
        (Ok((mut fs, ft, fc)), Ok((mut ds, dt, dc))) => {
            // Wall clock is the one legitimately nondeterministic field;
            // planning counters legitimately differ between manager
            // implementations (and merged summaries carry none). Neither
            // is part of a run's identity.
            fs.elapsed_secs = 0.0;
            ds.elapsed_secs = 0.0;
            fs.setup_secs = 0.0;
            ds.setup_secs = 0.0;
            fs.mem_counters = None;
            ds.mem_counters = None;
            let (ftj, dtj) = (ft.to_json(), dt.to_json());
            if ftj != dtj {
                return Err(first_diff("trace JSON", a_name, b_name, &ftj, &dtj));
            }
            let (fsj, dsj) = (fs.to_json(), ds.to_json());
            if fsj != dsj {
                return Err(first_diff("summary JSON", a_name, b_name, &fsj, &dsj));
            }
            if a_name == "fast" && fc.advance_calls > dc.advance_calls {
                return Err(format!(
                    "wake-set loop advanced MORE than dense: {} vs {}",
                    fc.advance_calls, dc.advance_calls
                ));
            }
            Ok(ExecDiffOutcome {
                trace_json_bytes: ftj.len(),
                fast: fc,
                dense: dc,
                error: None,
            })
        }
        (Err(fe), Err(de)) => {
            let (fe, de) = (fe.to_string(), de.to_string());
            if fe != de {
                return Err(format!(
                    "errors diverge: {a_name} `{fe}` vs {b_name} `{de}`"
                ));
            }
            Ok(ExecDiffOutcome {
                trace_json_bytes: 0,
                fast: ExecCounters::default(),
                dense: ExecCounters::default(),
                error: Some(fe),
            })
        }
        (Ok(_), Err(de)) => Err(format!("{a_name} succeeded but {b_name} failed: {de}")),
        (Err(fe), Ok(_)) => Err(format!("{b_name} succeeded but {a_name} failed: {fe}")),
    }
}

/// Locates the first divergent byte and quotes a window around it.
/// Shared with `reusediff`, whose divergence messages have the same shape.
pub(crate) fn first_diff(what: &str, a_name: &str, b_name: &str, a: &str, b: &str) -> String {
    let pos = a
        .bytes()
        .zip(b.bytes())
        .position(|(x, y)| x != y)
        .unwrap_or(a.len().min(b.len()));
    let ctx = |s: &str| {
        let lo = pos.saturating_sub(40);
        let hi = (pos + 40).min(s.len());
        s.get(lo..hi).unwrap_or("<non-utf8 boundary>").to_string()
    };
    format!(
        "{what} diverges at byte {pos} ({a_name} {} B, {b_name} {} B): {a_name} `…{}…` vs {b_name} `…{}…`",
        a.len(),
        b.len(),
        ctx(a),
        ctx(b)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{atomized_topo, slack_topo, tight_topo, tight_workload, uniform_model};

    #[test]
    fn sharded_dp_run_is_byte_identical() {
        let model = uniform_model(4, 4096);
        let topo = atomized_topo(3);
        let w = tight_workload(2);
        for scheme in [SchemeKind::BaselineDp, SchemeKind::HarmonyDp] {
            for shards in [2usize, 3] {
                let out = check_sharded_vs_unsharded(
                    &ExecDiffCase {
                        scheme,
                        model: &model,
                        topo: &topo,
                        workload: &w,
                        faults: &[],
                        prefetch: false,
                        iterations: 2,
                        resilience: None,
                    },
                    shards,
                )
                .unwrap_or_else(|e| panic!("{} x{shards}: {e}", scheme.name()));
                assert!(out.trace_json_bytes > 0);
                assert!(out.error.is_none());
            }
        }
    }

    #[test]
    fn sharding_a_pipeline_plan_is_a_typed_error_naming_the_scheme() {
        let model = uniform_model(4, 4096);
        let topo = atomized_topo(2);
        let w = tight_workload(2);
        // Every pipeline scheme — including 1F1B weight stashing — must
        // refuse, and the typed error must name the offending scheme so a
        // sweep harness can report which cell was asked to shard.
        for scheme in [
            SchemeKind::BaselinePp,
            SchemeKind::HarmonyPp,
            SchemeKind::Pipe1F1B,
        ] {
            let err = run_sharded_mode(
                &ExecDiffCase {
                    scheme,
                    model: &model,
                    topo: &topo,
                    workload: &w,
                    faults: &[],
                    prefetch: false,
                    iterations: 1,
                    resilience: None,
                },
                2,
            )
            .expect_err("pipeline plans must refuse to shard");
            let text = err.to_string();
            assert!(text.contains("replica-aligned"), "unexpected error: {text}");
            assert!(
                text.contains(&format!("scheme `{}`", scheme.name())),
                "refusal must name `{}`, got: {text}",
                scheme.name()
            );
        }
    }

    #[test]
    fn clean_run_is_byte_identical_across_modes() {
        let model = uniform_model(4, 4096);
        let topo = tight_topo(2);
        let w = tight_workload(2);
        let out = check_dense_vs_fast(&ExecDiffCase {
            scheme: SchemeKind::HarmonyPp,
            model: &model,
            topo: &topo,
            workload: &w,
            faults: &[],
            prefetch: false,
            iterations: 1,
            resilience: None,
        })
        .expect("modes must agree");
        assert!(out.trace_json_bytes > 0);
        assert!(out.error.is_none());
        assert!(out.fast.advance_calls <= out.dense.advance_calls);
    }

    #[test]
    fn pipe_1f1b_and_recompute_cells_are_byte_identical_across_modes() {
        // The two scheme-zoo additions stress the wake-set fast path in
        // opposite directions: weight stashing widens the tensor key
        // space (one stashed version per in-flight microbatch), while
        // recompute shrinks it (no stash plane at all, backward re-runs
        // forward). Both must match the dense reference byte-for-byte.
        let model = uniform_model(6, 4096);
        let topo = tight_topo(2);
        let stash = tight_workload(3);
        let recompute = harmony_sched::WorkloadConfig {
            recompute: true,
            ..tight_workload(3)
        };
        for (label, scheme, w) in [
            ("pipe-1f1b", SchemeKind::Pipe1F1B, &stash),
            ("pipe-1f1b recompute", SchemeKind::Pipe1F1B, &recompute),
            ("harmony-pp recompute", SchemeKind::HarmonyPp, &recompute),
        ] {
            let out = check_dense_vs_fast(&ExecDiffCase {
                scheme,
                model: &model,
                topo: &topo,
                workload: w,
                faults: &[],
                prefetch: true,
                iterations: 2,
                resilience: None,
            })
            .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert!(out.trace_json_bytes > 0);
            assert!(out.error.is_none());
        }
    }

    #[test]
    fn prefetch_cancel_retry_path_is_byte_identical() {
        // The tight topology forces the opportunistic double-buffer to
        // cancel and retry — the poll-set path with LRU-recency side
        // effects, the subtlest equivalence case.
        let model = uniform_model(6, 4096);
        let topo = slack_topo(2);
        let w = tight_workload(2);
        for scheme in SchemeKind::ALL {
            check_dense_vs_fast(&ExecDiffCase {
                scheme,
                model: &model,
                topo: &topo,
                workload: &w,
                faults: &[],
                prefetch: true,
                iterations: 2,
                resilience: None,
            })
            .unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
        }
    }
}
