//! Runtime invariant oracles.
//!
//! Each oracle observes one subsystem through the observer hooks
//! ([`harmony_memory::MemObserver`], [`harmony_sched::ExecObserver`]) and
//! **panics** the moment an invariant is violated, with a message naming
//! the invariant and the offending state. Panicking (rather than
//! collecting) keeps violations attributable to the exact event that
//! caused them and composes with `#[should_panic]` mutation tests.
//!
//! [`OracleConfig`] selects which oracles [`instrument`] attaches;
//! [`OracleConfig::all()`] is the conformance harness's default, while
//! production runs attach none and pay nothing beyond an `is_empty`
//! branch per event.

use std::collections::HashMap;

use harmony_memory::{MemEvent, MemObserver, MemoryManager, Residency, TensorId};
use harmony_sched::{ExecContext, ExecEvent, ExecObserver, SimExecutor};

/// Which invariant oracles to attach. See [`instrument`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleConfig {
    /// Device memory charged never exceeds capacity, including in-flight
    /// reservations ([`CapacityOracle`]).
    pub capacity: bool,
    /// Tensors are only *used* (touched/pinned) while device-resident
    /// ([`ResidencyUseOracle`]).
    pub residency_use: bool,
    /// Pins and unpins balance, and the oracle's shadow count always
    /// matches the manager's ([`PinBalanceOracle`]).
    pub pin_balance: bool,
    /// Free drops happen only on clean, host-backed tensors
    /// ([`CleanDropOracle`]).
    pub clean_drop: bool,
    /// A task starts only after every graph dependency finished
    /// ([`DependencyOracle`]).
    pub dependency: bool,
    /// Bytes issued on each channel equal the simulator's accounting
    /// ([`BandwidthConservationOracle`]).
    pub bandwidth: bool,
    /// No dirty device-resident tensor survives the end-of-run flush
    /// ([`FlushOracle`]).
    pub flush: bool,
}

impl OracleConfig {
    /// Every oracle on — the conformance default.
    pub fn all() -> Self {
        OracleConfig {
            capacity: true,
            residency_use: true,
            pin_balance: true,
            clean_drop: true,
            dependency: true,
            bandwidth: true,
            flush: true,
        }
    }

    /// Every oracle off (production behaviour).
    pub fn none() -> Self {
        OracleConfig {
            capacity: false,
            residency_use: false,
            pin_balance: false,
            clean_drop: false,
            dependency: false,
            bandwidth: false,
            flush: false,
        }
    }
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig::all()
    }
}

/// Attaches the selected oracles to an executor.
pub fn instrument(exec: &mut SimExecutor<'_>, cfg: &OracleConfig) {
    let mut mem: Vec<Box<dyn MemObserver>> = Vec::new();
    collect_mem_oracles(cfg, &mut mem);
    for oracle in mem {
        exec.attach_mem_observer(oracle);
    }
    if cfg.dependency {
        exec.attach_observer(Box::new(DependencyOracle));
    }
    if cfg.bandwidth {
        exec.attach_observer(Box::new(BandwidthConservationOracle::default()));
    }
    if cfg.flush {
        exec.attach_observer(Box::new(FlushOracle));
    }
}

/// Attaches the selected *memory* oracles directly to a bare
/// [`MemoryManager`] — for tests that drive the manager's state machine
/// without an executor (the executor oracles need run context and do not
/// apply).
pub fn instrument_memory(mm: &mut MemoryManager, cfg: &OracleConfig) {
    let mut mem: Vec<Box<dyn MemObserver>> = Vec::new();
    collect_mem_oracles(cfg, &mut mem);
    for oracle in mem {
        mm.attach_observer(oracle);
    }
}

fn collect_mem_oracles(cfg: &OracleConfig, out: &mut Vec<Box<dyn MemObserver>>) {
    if cfg.capacity {
        out.push(Box::new(CapacityOracle));
    }
    if cfg.residency_use {
        out.push(Box::new(ResidencyUseOracle));
    }
    if cfg.pin_balance {
        out.push(Box::new(PinBalanceOracle::default()));
    }
    if cfg.clean_drop {
        out.push(Box::new(CleanDropOracle));
    }
}

/// **Invariant:** for every device, charged bytes (resident + in-flight
/// reservations) never exceed capacity — checked after every memory event,
/// so even a transient overshoot mid-move is caught.
#[derive(Debug, Clone, Copy, Default)]
pub struct CapacityOracle;

impl MemObserver for CapacityOracle {
    fn on_event(&mut self, mm: &MemoryManager, event: &MemEvent) {
        for dev in 0..mm.num_devices() {
            let used = mm.used(dev).expect("device exists");
            let cap = mm.capacity(dev).expect("device exists");
            assert!(
                used <= cap,
                "capacity oracle: device {dev} charged {used} B > capacity {cap} B after {event:?}"
            );
        }
    }
}

/// **Invariant:** a tensor is only used — touched or pinned — while it is
/// resident on a device. The memory manager itself is permissive here
/// (`touch` is bookkeeping), so a runtime that skips a swap-in and
/// "computes" on a host-resident tensor corrupts results silently; this
/// oracle is what catches it.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResidencyUseOracle;

impl MemObserver for ResidencyUseOracle {
    fn on_event(&mut self, mm: &MemoryManager, event: &MemEvent) {
        let id = match *event {
            MemEvent::Use { id } | MemEvent::Pin { id } => id,
            _ => return,
        };
        let info = mm.info(id).expect("used tensor exists");
        assert!(
            matches!(info.residency, Residency::OnDevice(_)),
            "residency oracle: tensor {} ({}) used while {:?} after {event:?}",
            id,
            info.name,
            info.residency
        );
    }
}

/// **Invariant:** pins and unpins balance per tensor — the shadow count
/// never goes negative, always matches the manager's own count, and a
/// freed tensor leaves no pins behind.
#[derive(Debug, Clone, Default)]
pub struct PinBalanceOracle {
    counts: HashMap<TensorId, i64>,
}

impl MemObserver for PinBalanceOracle {
    fn on_event(&mut self, mm: &MemoryManager, event: &MemEvent) {
        match *event {
            MemEvent::Pin { id } => {
                let c = self.counts.entry(id).or_insert(0);
                *c += 1;
                let actual = mm.info(id).expect("pinned tensor exists").pinned as i64;
                assert_eq!(
                    *c, actual,
                    "pin oracle: tensor {id} shadow pin count {c} != manager count {actual}"
                );
            }
            MemEvent::Unpin { id } => {
                let c = self.counts.entry(id).or_insert(0);
                *c -= 1;
                assert!(*c >= 0, "pin oracle: tensor {id} unpinned below zero");
                let actual = mm.info(id).expect("unpinned tensor exists").pinned as i64;
                assert_eq!(
                    *c, actual,
                    "pin oracle: tensor {id} shadow pin count {c} != manager count {actual}"
                );
            }
            MemEvent::Free { id } => {
                let c = self.counts.remove(&id).unwrap_or(0);
                assert_eq!(
                    c, 0,
                    "pin oracle: tensor {id} freed with {c} pins outstanding"
                );
            }
            _ => {}
        }
    }
}

/// **Invariant:** dirty-bit/host-copy consistency on free drops — a
/// tensor leaves a device without writeback only if it was clean *and*
/// its host copy was valid (otherwise the drop lost the only up-to-date
/// copy).
#[derive(Debug, Clone, Copy, Default)]
pub struct CleanDropOracle;

impl MemObserver for CleanDropOracle {
    fn on_event(&mut self, _mm: &MemoryManager, event: &MemEvent) {
        if let MemEvent::DropToHost {
            id,
            dev,
            was_dirty,
            had_host_copy,
        } = *event
        {
            assert!(
                !was_dirty && had_host_copy,
                "clean-drop oracle: tensor {id} dropped from device {dev} \
                 (dirty={was_dirty}, host_copy_valid={had_host_copy}) — data lost"
            );
        }
    }
}

/// **Invariant:** task dependency order — a task's kernel is submitted
/// only after every one of its graph dependencies completed (on any GPU:
/// dependencies cross devices in pipeline schemes).
#[derive(Debug, Clone, Copy, Default)]
pub struct DependencyOracle;

impl ExecObserver for DependencyOracle {
    fn on_event(&mut self, ctx: &ExecContext<'_>, event: &ExecEvent) {
        if let ExecEvent::TaskStarted {
            iter,
            replica,
            task,
            gpu,
        } = *event
        {
            for &dep in &ctx.plan.graph.task(task).deps {
                assert!(
                    ctx.done.contains(&(iter, replica, dep)),
                    "dependency oracle: task {task:?} started on gpu{gpu} \
                     (iter {iter}, replica {replica}) before dependency {dep:?} finished"
                );
            }
        }
    }
}

/// **Invariant:** per-channel bandwidth conservation — every byte the
/// executor hands to the simulator is accounted on exactly the channels
/// of its route, matching the simulator's own per-channel tallies at the
/// end of the run (no bytes invented, lost, or double-counted).
#[derive(Debug, Clone, Default)]
pub struct BandwidthConservationOracle {
    issued: Vec<u64>,
}

impl ExecObserver for BandwidthConservationOracle {
    fn on_event(&mut self, ctx: &ExecContext<'_>, event: &ExecEvent) {
        match event {
            ExecEvent::TransferIssued { route, bytes } => {
                if self.issued.is_empty() {
                    self.issued = vec![0; ctx.sim.num_channels()];
                }
                for &c in route {
                    self.issued[c] += bytes;
                }
            }
            ExecEvent::RunFinished => {
                let sim = &ctx.sim.stats().channel_bytes;
                if self.issued.is_empty() {
                    self.issued = vec![0; sim.len()];
                }
                assert_eq!(
                    &self.issued, sim,
                    "bandwidth oracle: issued bytes per channel diverge from \
                     the simulator's accounting"
                );
            }
            _ => {}
        }
    }
}

/// **Invariant:** end-of-iteration flush completeness — when the run
/// finishes, no tensor is still dirty and device-resident (every update
/// was written back; the measured swap volume is complete and comparable
/// to the per-iteration analytical model).
#[derive(Debug, Clone, Copy, Default)]
pub struct FlushOracle;

impl ExecObserver for FlushOracle {
    fn on_event(&mut self, ctx: &ExecContext<'_>, event: &ExecEvent) {
        if matches!(event, ExecEvent::RunFinished) {
            for info in ctx.mm.tensor_infos() {
                assert!(
                    !(info.dirty && matches!(info.residency, Residency::OnDevice(_))),
                    "flush oracle: tensor {} ({}) is dirty and device-resident at run end \
                     — flush_dirty_state was skipped or incomplete",
                    info.id,
                    info.name
                );
            }
        }
    }
}
