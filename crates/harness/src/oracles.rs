//! Runtime invariant oracles.
//!
//! Each oracle observes one subsystem through the observer hooks
//! ([`harmony_memory::MemObserver`], [`harmony_sched::ExecObserver`]) and
//! **panics** the moment an invariant is violated, with a message naming
//! the invariant and the offending state. Panicking (rather than
//! collecting) keeps violations attributable to the exact event that
//! caused them and composes with `#[should_panic]` mutation tests.
//!
//! [`OracleConfig`] selects which oracles [`instrument`] attaches;
//! [`OracleConfig::all()`] is the conformance harness's default, while
//! production runs attach none and pay nothing beyond an `is_empty`
//! branch per event.

use std::collections::{HashMap, HashSet};
use std::ops::Range;

use harmony_memory::{MemEvent, MemObserver, MemoryManager, Residency, TensorClass, TensorId};
use harmony_sched::{ExecContext, ExecEvent, ExecObserver, SimExecutor};
use harmony_taskgraph::{TaskKind, TensorRef};

/// Which invariant oracles to attach. See [`instrument`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleConfig {
    /// Device memory charged never exceeds capacity, including in-flight
    /// reservations ([`CapacityOracle`]).
    pub capacity: bool,
    /// Tensors are only *used* (touched/pinned) while device-resident
    /// ([`ResidencyUseOracle`]).
    pub residency_use: bool,
    /// Pins and unpins balance, and the oracle's shadow count always
    /// matches the manager's ([`PinBalanceOracle`]).
    pub pin_balance: bool,
    /// Free drops happen only on clean, host-backed tensors
    /// ([`CleanDropOracle`]).
    pub clean_drop: bool,
    /// A task starts only after every graph dependency finished
    /// ([`DependencyOracle`]).
    pub dependency: bool,
    /// Bytes issued on each channel equal the simulator's accounting
    /// ([`BandwidthConservationOracle`]).
    pub bandwidth: bool,
    /// No dirty device-resident tensor survives the end-of-run flush
    /// ([`FlushOracle`]).
    pub flush: bool,
    /// 1F1B weight-stash lifetime: a stashed weight version is accessed
    /// only inside its microbatch's forward→backward window
    /// ([`StashWindowOracle`]). A no-op on schemes without weight
    /// stashing, so it is always on in [`OracleConfig::all`].
    pub stash_window: bool,
    /// Recomputation leaves no per-layer stash: no `Stash`-class tensor
    /// is ever registered, allocated, or fetched back from the host
    /// ([`RecomputeFetchOracle`]). Only valid on `recompute = true`
    /// workloads — stashing schemes legitimately swap stashes — so
    /// [`OracleConfig::all`] leaves it off and the conformance matrix
    /// arms it per recompute cell.
    pub recompute_no_stash_fetch: bool,
}

impl OracleConfig {
    /// Every oracle on — the conformance default.
    pub fn all() -> Self {
        OracleConfig {
            capacity: true,
            residency_use: true,
            pin_balance: true,
            clean_drop: true,
            dependency: true,
            bandwidth: true,
            flush: true,
            stash_window: true,
            recompute_no_stash_fetch: false,
        }
    }

    /// Every oracle off (production behaviour).
    pub fn none() -> Self {
        OracleConfig {
            capacity: false,
            residency_use: false,
            pin_balance: false,
            clean_drop: false,
            dependency: false,
            bandwidth: false,
            flush: false,
            stash_window: false,
            recompute_no_stash_fetch: false,
        }
    }
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig::all()
    }
}

/// Attaches the selected oracles to an executor.
pub fn instrument(exec: &mut SimExecutor<'_>, cfg: &OracleConfig) {
    let mut mem: Vec<Box<dyn MemObserver>> = Vec::new();
    collect_mem_oracles(cfg, &mut mem);
    for oracle in mem {
        exec.attach_mem_observer(oracle);
    }
    if cfg.dependency {
        exec.attach_observer(Box::new(DependencyOracle));
    }
    if cfg.bandwidth {
        exec.attach_observer(Box::new(BandwidthConservationOracle::default()));
    }
    if cfg.flush {
        exec.attach_observer(Box::new(FlushOracle));
    }
    if cfg.stash_window {
        exec.attach_observer(Box::new(StashWindowOracle::default()));
    }
}

/// Attaches the selected *memory* oracles directly to a bare
/// [`MemoryManager`] — for tests that drive the manager's state machine
/// without an executor (the executor oracles need run context and do not
/// apply).
pub fn instrument_memory(mm: &mut MemoryManager, cfg: &OracleConfig) {
    let mut mem: Vec<Box<dyn MemObserver>> = Vec::new();
    collect_mem_oracles(cfg, &mut mem);
    for oracle in mem {
        mm.attach_observer(oracle);
    }
}

fn collect_mem_oracles(cfg: &OracleConfig, out: &mut Vec<Box<dyn MemObserver>>) {
    if cfg.capacity {
        out.push(Box::new(CapacityOracle));
    }
    if cfg.residency_use {
        out.push(Box::new(ResidencyUseOracle));
    }
    if cfg.pin_balance {
        out.push(Box::new(PinBalanceOracle::default()));
    }
    if cfg.clean_drop {
        out.push(Box::new(CleanDropOracle));
    }
    if cfg.recompute_no_stash_fetch {
        out.push(Box::new(RecomputeFetchOracle));
    }
}

/// **Invariant:** for every device, charged bytes (resident + in-flight
/// reservations) never exceed capacity — checked after every memory event,
/// so even a transient overshoot mid-move is caught.
#[derive(Debug, Clone, Copy, Default)]
pub struct CapacityOracle;

impl MemObserver for CapacityOracle {
    fn on_event(&mut self, mm: &MemoryManager, event: &MemEvent) {
        for dev in 0..mm.num_devices() {
            let used = mm.used(dev).expect("device exists");
            let cap = mm.capacity(dev).expect("device exists");
            assert!(
                used <= cap,
                "capacity oracle: device {dev} charged {used} B > capacity {cap} B after {event:?}"
            );
        }
    }
}

/// **Invariant:** a tensor is only used — touched or pinned — while it is
/// resident on a device. The memory manager itself is permissive here
/// (`touch` is bookkeeping), so a runtime that skips a swap-in and
/// "computes" on a host-resident tensor corrupts results silently; this
/// oracle is what catches it.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResidencyUseOracle;

impl MemObserver for ResidencyUseOracle {
    fn on_event(&mut self, mm: &MemoryManager, event: &MemEvent) {
        let id = match *event {
            MemEvent::Use { id } | MemEvent::Pin { id } => id,
            _ => return,
        };
        let info = mm.info(id).expect("used tensor exists");
        assert!(
            matches!(info.residency, Residency::OnDevice(_)),
            "residency oracle: tensor {} ({}) used while {:?} after {event:?}",
            id,
            info.name,
            info.residency
        );
    }
}

/// **Invariant:** pins and unpins balance per tensor — the shadow count
/// never goes negative, always matches the manager's own count, and a
/// freed tensor leaves no pins behind.
#[derive(Debug, Clone, Default)]
pub struct PinBalanceOracle {
    counts: HashMap<TensorId, i64>,
}

impl MemObserver for PinBalanceOracle {
    fn on_event(&mut self, mm: &MemoryManager, event: &MemEvent) {
        match *event {
            MemEvent::Pin { id } => {
                let c = self.counts.entry(id).or_insert(0);
                *c += 1;
                let actual = mm.info(id).expect("pinned tensor exists").pinned as i64;
                assert_eq!(
                    *c, actual,
                    "pin oracle: tensor {id} shadow pin count {c} != manager count {actual}"
                );
            }
            MemEvent::Unpin { id } => {
                let c = self.counts.entry(id).or_insert(0);
                *c -= 1;
                assert!(*c >= 0, "pin oracle: tensor {id} unpinned below zero");
                let actual = mm.info(id).expect("unpinned tensor exists").pinned as i64;
                assert_eq!(
                    *c, actual,
                    "pin oracle: tensor {id} shadow pin count {c} != manager count {actual}"
                );
            }
            MemEvent::Free { id } => {
                let c = self.counts.remove(&id).unwrap_or(0);
                assert_eq!(
                    c, 0,
                    "pin oracle: tensor {id} freed with {c} pins outstanding"
                );
            }
            _ => {}
        }
    }
}

/// **Invariant:** dirty-bit/host-copy consistency on free drops — a
/// tensor leaves a device without writeback only if it was clean *and*
/// its host copy was valid (otherwise the drop lost the only up-to-date
/// copy).
#[derive(Debug, Clone, Copy, Default)]
pub struct CleanDropOracle;

impl MemObserver for CleanDropOracle {
    fn on_event(&mut self, _mm: &MemoryManager, event: &MemEvent) {
        if let MemEvent::DropToHost {
            id,
            dev,
            was_dirty,
            had_host_copy,
        } = *event
        {
            assert!(
                !was_dirty && had_host_copy,
                "clean-drop oracle: tensor {id} dropped from device {dev} \
                 (dirty={was_dirty}, host_copy_valid={had_host_copy}) — data lost"
            );
        }
    }
}

/// **Invariant:** task dependency order — a task's kernel is submitted
/// only after every one of its graph dependencies completed (on any GPU:
/// dependencies cross devices in pipeline schemes).
#[derive(Debug, Clone, Copy, Default)]
pub struct DependencyOracle;

impl ExecObserver for DependencyOracle {
    fn on_event(&mut self, ctx: &ExecContext<'_>, event: &ExecEvent) {
        if let ExecEvent::TaskStarted {
            iter,
            replica,
            task,
            gpu,
        } = *event
        {
            for &dep in &ctx.plan.graph.task(task).deps {
                assert!(
                    ctx.done.contains(&(iter, replica, dep)),
                    "dependency oracle: task {task:?} started on gpu{gpu} \
                     (iter {iter}, replica {replica}) before dependency {dep:?} finished"
                );
            }
        }
    }
}

/// **Invariant:** per-channel bandwidth conservation — every byte the
/// executor hands to the simulator is accounted on exactly the channels
/// of its route, matching the simulator's own per-channel tallies at the
/// end of the run (no bytes invented, lost, or double-counted).
#[derive(Debug, Clone, Default)]
pub struct BandwidthConservationOracle {
    issued: Vec<u64>,
}

impl ExecObserver for BandwidthConservationOracle {
    fn on_event(&mut self, ctx: &ExecContext<'_>, event: &ExecEvent) {
        match event {
            ExecEvent::TransferIssued { route, bytes } => {
                if self.issued.is_empty() {
                    self.issued = vec![0; ctx.sim.num_channels()];
                }
                for &c in route {
                    self.issued[c] += bytes;
                }
            }
            ExecEvent::RunFinished => {
                let sim = &ctx.sim.stats().channel_bytes;
                if self.issued.is_empty() {
                    self.issued = vec![0; sim.len()];
                }
                assert_eq!(
                    &self.issued, sim,
                    "bandwidth oracle: issued bytes per channel diverge from \
                     the simulator's accounting"
                );
            }
            _ => {}
        }
    }
}

/// **Invariant:** end-of-iteration flush completeness — when the run
/// finishes, no tensor is still dirty and device-resident (every update
/// was written back; the measured swap volume is complete and comparable
/// to the per-iteration analytical model).
#[derive(Debug, Clone, Copy, Default)]
pub struct FlushOracle;

impl ExecObserver for FlushOracle {
    fn on_event(&mut self, ctx: &ExecContext<'_>, event: &ExecEvent) {
        if matches!(event, ExecEvent::RunFinished) {
            for info in ctx.mm.tensor_infos() {
                assert!(
                    !(info.dirty && matches!(info.residency, Residency::OnDevice(_))),
                    "flush oracle: tensor {} ({}) is dirty and device-resident at run end \
                     — flush_dirty_state was skipped or incomplete",
                    info.id,
                    info.name
                );
            }
        }
    }
}

/// Panics unless `kind` may legitimately access `WeightStash{layer, ubatch}`.
///
/// The stashed weight version's lifetime spans exactly its microbatch's
/// in-flight forward→backward window: it is *written* only by
/// `Forward{pack, ubatch}` with `layer ∈ packs[pack]` (the forward that
/// stashes the version it used) and *read* only by the matching
/// `Backward{pack, ubatch}` (which differentiates against it and frees
/// it). Every other access — a different microbatch, a different pack, a
/// loss or update task — reads a weight version it was never meant to
/// see.
pub fn check_stash_access(
    kind: TaskKind,
    layer: usize,
    ubatch: usize,
    write: bool,
    packs: &[Range<usize>],
) {
    let legal = match kind {
        TaskKind::Forward { pack, ubatch: u } => {
            write && u == ubatch && packs[pack].contains(&layer)
        }
        TaskKind::Backward { pack, ubatch: u } => {
            !write && u == ubatch && packs[pack].contains(&layer)
        }
        TaskKind::Loss { .. } | TaskKind::Update { .. } => false,
    };
    assert!(
        legal,
        "stash-window oracle: {kind:?} {} WeightStash{{layer:{layer}, ubatch:{ubatch}}} — \
         a stashed weight version belongs exclusively to its own microbatch's \
         forward→backward window over the pack containing its layer",
        if write { "writes" } else { "reads" }
    );
}

/// **Invariant:** 1F1B weight-stash lifetime — a stashed weight version
/// `WeightStash{layer, ubatch}` is written only by its own microbatch's
/// forward over the pack containing `layer`, read only by that
/// microbatch's backward over the same pack, and never accessed again
/// once that backward has finished (the in-flight window closed and the
/// stash was freed). A stale read past the window is exactly the
/// PipeDream staleness bug weight stashing exists to prevent.
#[derive(Debug, Clone, Default)]
pub struct StashWindowOracle {
    /// Windows already closed: `(iter, replica, layer, ubatch)` of every
    /// freed stashed version.
    closed: HashSet<(u32, usize, usize, usize)>,
}

impl ExecObserver for StashWindowOracle {
    fn on_event(&mut self, ctx: &ExecContext<'_>, event: &ExecEvent) {
        match *event {
            ExecEvent::TaskStarted {
                iter,
                replica,
                task,
                gpu,
            } => {
                let t = ctx.plan.graph.task(task);
                let packs = ctx.plan.graph.packs();
                for (refs, write) in [(&t.reads, false), (&t.writes, true)] {
                    for r in refs.iter() {
                        if let TensorRef::WeightStash { layer, ubatch } = *r {
                            assert!(
                                !self.closed.contains(&(iter, replica, layer, ubatch)),
                                "stash-window oracle: {:?} on gpu{gpu} (iter {iter}, replica \
                                 {replica}) accesses WeightStash{{layer:{layer}, \
                                 ubatch:{ubatch}}} after its window closed",
                                t.kind
                            );
                            check_stash_access(t.kind, layer, ubatch, write, packs);
                        }
                    }
                }
            }
            ExecEvent::TaskFinished {
                iter,
                replica,
                task,
                ..
            } => {
                for r in &ctx.plan.graph.task(task).frees {
                    if let TensorRef::WeightStash { layer, ubatch } = *r {
                        self.closed.insert((iter, replica, layer, ubatch));
                    }
                }
            }
            _ => {}
        }
    }
}

/// **Invariant:** recomputation (§4) eliminates the per-layer stash —
/// forward keeps only each pack's boundary input alive and backward
/// re-runs the pack's forward, so no `Stash`-class tensor may ever be
/// registered, allocated, or fetched back from the host. A host fetch of
/// a stash under recompute means the run is paying both the recompute
/// FLOPs *and* the swap traffic the knob was meant to eliminate.
///
/// Only attach on `recompute = true` workloads: stashing schemes swap
/// stashes legitimately.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecomputeFetchOracle;

impl MemObserver for RecomputeFetchOracle {
    fn on_event(&mut self, mm: &MemoryManager, event: &MemEvent) {
        match *event {
            MemEvent::RegisterHost { id, class, .. } | MemEvent::Alloc { id, class, .. } => {
                assert_ne!(
                    class,
                    TensorClass::Stash,
                    "recompute oracle: stash tensor {id} materialized — recomputation \
                     must not create per-layer stashes"
                );
            }
            MemEvent::BeginSwapIn { id, dst, .. } => {
                let info = mm.info(id).expect("in-flight tensor exists");
                assert_ne!(
                    info.class,
                    TensorClass::Stash,
                    "recompute oracle: stash tensor {id} ({}) fetched from host toward \
                     device {dst} — recomputed activations are never swapped back in",
                    info.name
                );
            }
            _ => {}
        }
    }
}
