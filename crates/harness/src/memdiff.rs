//! Differential checking of the memory manager's rewritten hot path: the
//! SoA/ordered-victim-index core (default) against the frozen pre-rewrite
//! core (`MemoryManager::convert_to_dense`, behind `harmony-memory`'s
//! `dense_memory` feature).
//!
//! Two differentials, the same way simdiff/execdiff prove their rewrites:
//!
//! * **Full-run** ([`check_fast_vs_dense_memory`]): an executor case run
//!   twice — once on the fast manager, once with every manager operation
//!   routed through the dense core — must be byte-identical on trace JSON
//!   and summary JSON (wall clock zeroed, planning counters stripped:
//!   the dense core legitimately allocates per fetch), with matched error
//!   strings when both fail.
//! * **Manager-script** ([`check_script`]): a randomized script of
//!   residency/pin transitions with interleaved `make_room`/`plan_fetch`
//!   probes replayed op-for-op on both cores; every per-op result —
//!   victim lists in eviction order, errors by message, candidate order,
//!   per-device `used`, `host_used` — must match exactly. The proptest in
//!   `tests/memdiff_proptest.rs` feeds this with arbitrary interleavings,
//!   and [`MemScriptOp::Sabotage`] (an armed index desync on the fast
//!   core only) proves the differential actually catches the
//!   missed-membership-update bug class.

use harmony_memory::{EvictionPolicy, Lru, MemoryManager, NextUseAware, TensorClass, TensorId};

use crate::execdiff::{self, ExecDiffCase, ExecDiffOutcome};

/// Plans and runs `case` once, routing the memory manager through the
/// frozen dense core when `dense_memory` is set. Public so the bench
/// crate (`repro mem-smoke`) can time the two managers back-to-back in
/// the same process.
pub fn run_mode_mem(case: &ExecDiffCase<'_>, dense_memory: bool) -> execdiff::ModeResult {
    use harmony::simulate;
    use harmony_sched::SimExecutor;
    let mut plan = simulate::plan(case.scheme, case.model, case.topo, case.workload)?;
    if case.prefetch {
        plan.scheme = plan.scheme.clone().with_prefetch();
        plan.name = format!("{}+prefetch", plan.name);
    }
    let mut exec = SimExecutor::with_iterations(case.topo, case.model, &plan, case.iterations)?;
    if !case.faults.is_empty() {
        exec.inject_faults(case.faults)?;
    }
    if let Some(seed) = case.resilience {
        exec.enable_resilience(seed);
    }
    if dense_memory {
        exec.use_dense_memory();
    }
    exec.run_counted()
}

/// Runs `case` on the fast manager and on the dense-memory reference and
/// checks byte-identical results (execdiff's exact contract), or returns
/// a message naming the first divergence.
pub fn check_fast_vs_dense_memory(case: &ExecDiffCase<'_>) -> Result<ExecDiffOutcome, String> {
    let fast = run_mode_mem(case, false);
    let dense = run_mode_mem(case, true);
    execdiff::compare_modes(fast, dense, "fast-mem", "dense-mem")
}

/// One operation of a manager script. Tensor operands index into the
/// script's so-far-registered id list (out-of-range → the op records
/// `skip`, identically on both cores, so random scripts stay dense in
/// meaningful transitions).
#[derive(Debug, Clone)]
pub enum MemScriptOp {
    /// Register a host tensor of the given size.
    RegisterHost(u64),
    /// Allocate a fresh device tensor (size, device).
    AllocDevice(u64, usize),
    /// begin_swap_in + finish_move_to_device.
    SwapIn(usize, usize),
    /// begin_swap_in + cancel_move_to_device (resilience revert path).
    SwapInCancel(usize, usize),
    /// begin_swap_out + finish_swap_out.
    SwapOut(usize),
    /// begin_p2p + finish_move_to_device.
    P2p(usize, usize),
    /// begin_p2p + cancel_move_to_device (re-enters the source index).
    P2pCancel(usize, usize),
    /// Pin.
    Pin(usize),
    /// Unpin.
    Unpin(usize),
    /// Free.
    Free(usize),
    /// Touch (LRU re-key).
    Touch(usize),
    /// drop_to_host.
    Drop(usize),
    /// mark_dirty.
    MarkDirty(usize),
    /// set_next_use (next-use re-key).
    SetNextUse(usize, Option<u64>),
    /// Planning probe: `make_room(device, bytes)` with LRU (`false`) or
    /// next-use (`true`) — victims and errors enter the transcript.
    MakeRoom(usize, u64, bool),
    /// Planning probe: `plan_fetch(tensor, device)` with LRU (`false`)
    /// or next-use (`true`).
    PlanFetch(usize, usize, bool),
    /// Sabotage (fast core only; inert on the dense core): silently
    /// desync one tensor out of the evictable/victim indexes on this
    /// device. A script containing this op MUST make [`check_script`]
    /// report a divergence if the sabotage removed anything — that is the
    /// mutation-catch proof that the differential detects index-desync
    /// bugs.
    Sabotage(usize),
}

/// Replays `ops` on a fresh manager (converted to the dense core first
/// when `dense` is set) and records one transcript line per op: the op's
/// results/errors plus a digest of all observable manager state
/// (per-device used/peak, candidate order, host_used). Byte-comparing two
/// transcripts is the script differential.
pub fn run_script(caps: &[u64], ops: &[MemScriptOp], dense: bool) -> Vec<String> {
    let mut mm = MemoryManager::new(caps.to_vec());
    if dense {
        mm.convert_to_dense();
    }
    let mut ids: Vec<TensorId> = Vec::new();
    let mut lines = Vec::with_capacity(ops.len());
    for op in ops {
        let entry = apply_op(&mut mm, &mut ids, op);
        lines.push(format!("{entry} | {}", digest(&mm, caps.len())));
    }
    lines
}

/// Runs `ops` on both cores and checks transcript equality, naming the
/// first divergent op on mismatch.
pub fn check_script(caps: &[u64], ops: &[MemScriptOp]) -> Result<(), String> {
    let fast = run_script(caps, ops, false);
    let dense = run_script(caps, ops, true);
    for (i, (f, d)) in fast.iter().zip(&dense).enumerate() {
        if f != d {
            return Err(format!(
                "op {i} ({:?}) diverges:\n  fast-mem:  {f}\n  dense-mem: {d}",
                ops[i]
            ));
        }
    }
    Ok(())
}

fn pick(ids: &[TensorId], t: usize) -> Option<TensorId> {
    ids.get(t).copied()
}

fn policy_of(next_use: bool) -> &'static dyn EvictionPolicy {
    if next_use {
        &NextUseAware
    } else {
        &Lru
    }
}

/// Executes one op, returning its transcript entry. Results render via
/// `Debug`/`Display` so victim order and error messages compare
/// byte-for-byte.
fn apply_op(mm: &mut MemoryManager, ids: &mut Vec<TensorId>, op: &MemScriptOp) -> String {
    let fmt = |r: Result<String, harmony_memory::MemError>| match r {
        Ok(s) => format!("ok {s}"),
        Err(e) => format!("err {e}"),
    };
    match *op {
        MemScriptOp::RegisterHost(b) => {
            let id = mm.register_on_host(format!("h{}", ids.len()), b, TensorClass::Weight);
            ids.push(id);
            format!("reg {id}")
        }
        MemScriptOp::AllocDevice(b, d) => {
            match mm.alloc_on_device(format!("a{}", ids.len()), b, TensorClass::Stash, d) {
                Ok(id) => {
                    ids.push(id);
                    format!("alloc ok {id}")
                }
                Err(e) => format!("alloc err {e}"),
            }
        }
        MemScriptOp::SwapIn(t, d) => match pick(ids, t) {
            Some(id) => fmt(mm.begin_swap_in(id, d).and_then(|b| {
                mm.finish_move_to_device(id)?;
                Ok(format!("{b}"))
            })),
            None => "skip".into(),
        },
        MemScriptOp::SwapInCancel(t, d) => match pick(ids, t) {
            Some(id) => fmt(mm.begin_swap_in(id, d).and_then(|b| {
                mm.cancel_move_to_device(id)?;
                Ok(format!("{b}"))
            })),
            None => "skip".into(),
        },
        MemScriptOp::SwapOut(t) => match pick(ids, t) {
            Some(id) => fmt(mm.begin_swap_out(id).and_then(|(s, b)| {
                mm.finish_swap_out(id)?;
                Ok(format!("{s}/{b}"))
            })),
            None => "skip".into(),
        },
        MemScriptOp::P2p(t, d) => match pick(ids, t) {
            Some(id) => fmt(mm.begin_p2p(id, d).and_then(|(s, b)| {
                mm.finish_move_to_device(id)?;
                Ok(format!("{s}/{b}"))
            })),
            None => "skip".into(),
        },
        MemScriptOp::P2pCancel(t, d) => match pick(ids, t) {
            Some(id) => fmt(mm.begin_p2p(id, d).and_then(|(s, b)| {
                mm.cancel_move_to_device(id)?;
                Ok(format!("{s}/{b}"))
            })),
            None => "skip".into(),
        },
        MemScriptOp::Pin(t) => match pick(ids, t) {
            Some(id) => fmt(mm.pin(id).map(|_| String::new())),
            None => "skip".into(),
        },
        MemScriptOp::Unpin(t) => match pick(ids, t) {
            Some(id) => fmt(mm.unpin(id).map(|_| String::new())),
            None => "skip".into(),
        },
        MemScriptOp::Free(t) => match pick(ids, t) {
            Some(id) => fmt(mm.free(id).map(|_| String::new())),
            None => "skip".into(),
        },
        MemScriptOp::Touch(t) => match pick(ids, t) {
            Some(id) => fmt(mm.touch(id).map(|_| String::new())),
            None => "skip".into(),
        },
        MemScriptOp::Drop(t) => match pick(ids, t) {
            Some(id) => fmt(mm.drop_to_host(id).map(|_| String::new())),
            None => "skip".into(),
        },
        MemScriptOp::MarkDirty(t) => match pick(ids, t) {
            Some(id) => fmt(mm.mark_dirty(id).map(|_| String::new())),
            None => "skip".into(),
        },
        MemScriptOp::SetNextUse(t, h) => match pick(ids, t) {
            Some(id) => fmt(mm.set_next_use(id, h).map(|_| String::new())),
            None => "skip".into(),
        },
        MemScriptOp::MakeRoom(d, b, nu) => {
            fmt(mm.make_room(d, b, policy_of(nu)).map(|v| format!("{v:?}")))
        }
        MemScriptOp::PlanFetch(t, d, nu) => match pick(ids, t) {
            Some(id) => fmt(mm.plan_fetch(id, d, policy_of(nu)).map(|p| {
                format!(
                    "{:?}/{:?}/{:?}",
                    p.evictions, p.needs_transfer, p.src_device
                )
            })),
            None => "skip".into(),
        },
        MemScriptOp::Sabotage(d) => {
            // Inert (false) on the dense core by design — the divergence
            // must come from the fast core's now-desynced index, exactly
            // like a real missed membership update would.
            format!("sabotage {}", mm.arm_index_desync(d))
        }
    }
}

/// All observable manager state, rendered deterministically.
fn digest(mm: &MemoryManager, devices: usize) -> String {
    let mut out = String::new();
    for d in 0..devices {
        let cands: Vec<TensorId> = mm.eviction_candidates(d).map(|t| t.id).collect();
        out.push_str(&format!(
            "d{d}:u{}/p{}c{:?} ",
            mm.used(d).unwrap_or(u64::MAX),
            mm.peak_used(d).unwrap_or(u64::MAX),
            cands,
        ));
    }
    out.push_str(&format!("host:{}", mm.host_used()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{tight_topo, tight_workload, uniform_model};
    use harmony::simulate::SchemeKind;

    #[test]
    fn clean_runs_are_byte_identical_across_memory_cores() {
        let model = uniform_model(4, 4096);
        let topo = tight_topo(2);
        let w = tight_workload(2);
        for scheme in SchemeKind::ALL {
            let out = check_fast_vs_dense_memory(&ExecDiffCase {
                scheme,
                model: &model,
                topo: &topo,
                workload: &w,
                faults: &[],
                prefetch: false,
                iterations: 2,
                resilience: None,
            })
            .unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
            assert!(out.trace_json_bytes > 0);
            assert!(out.error.is_none());
        }
    }

    #[test]
    fn prefetch_pressure_is_byte_identical_across_memory_cores() {
        // Prefetch on the tight topology exercises cancel-retry planning
        // under pressure — the heaviest make_room traffic.
        let model = uniform_model(6, 4096);
        let topo = tight_topo(2);
        let w = tight_workload(3);
        for scheme in [
            SchemeKind::HarmonyPp,
            SchemeKind::BaselinePp,
            // Weight stashing adds the WeightStash plane to the victim
            // index — the heaviest per-class pressure mix.
            SchemeKind::Pipe1F1B,
        ] {
            check_fast_vs_dense_memory(&ExecDiffCase {
                scheme,
                model: &model,
                topo: &topo,
                workload: &w,
                faults: &[],
                prefetch: true,
                iterations: 2,
                resilience: None,
            })
            .unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
        }
    }

    #[test]
    fn recompute_cells_are_byte_identical_across_memory_cores() {
        // Recompute eliminates the stash plane entirely; the cores must
        // agree on the reshaped working set for every scheme.
        let model = uniform_model(6, 4096);
        let topo = tight_topo(2);
        let w = harmony_sched::WorkloadConfig {
            recompute: true,
            ..tight_workload(3)
        };
        for scheme in SchemeKind::ALL {
            check_fast_vs_dense_memory(&ExecDiffCase {
                scheme,
                model: &model,
                topo: &topo,
                workload: &w,
                faults: &[],
                prefetch: true,
                iterations: 2,
                resilience: None,
            })
            .unwrap_or_else(|e| panic!("{} recompute: {e}", scheme.name()));
        }
    }

    #[test]
    fn hand_written_script_matches_across_cores() {
        use MemScriptOp as O;
        let script = vec![
            O::RegisterHost(400),
            O::AllocDevice(300, 0),
            O::AllocDevice(250, 0),
            O::MakeRoom(0, 500, false),
            O::SwapIn(0, 0),
            O::Touch(1),
            O::SetNextUse(2, Some(5)),
            O::MakeRoom(0, 600, true),
            O::Pin(1),
            O::PlanFetch(0, 1, false),
            O::P2pCancel(2, 1),
            O::Unpin(1),
            O::SwapOut(2),
            O::Drop(0),
            O::Free(1),
            O::MakeRoom(0, 100, false),
        ];
        check_script(&[1000, 800], &script).expect("cores must agree");
    }

    #[test]
    fn sabotaged_fast_index_is_flagged() {
        use MemScriptOp as O;
        // Two resident tensors, then desync one out of the fast core's
        // indexes: the very next candidate-order digest must differ.
        let script = vec![
            O::AllocDevice(300, 0),
            O::AllocDevice(400, 0),
            O::Sabotage(0),
            O::MakeRoom(0, 500, false),
        ];
        let err = check_script(&[1000], &script)
            .expect_err("differential must flag an armed index desync");
        assert!(err.contains("diverges"), "unexpected message: {err}");
    }
}
