//! The conformance matrix: every scheme over a grid of models,
//! topologies, and workload knobs, with all oracles enabled.
//!
//! Three cell families:
//!
//! * **exact** — the §3 analytical regime (`pack = 1`, full grouping):
//!   schedule-independent swap volumes must match the boundary-exact
//!   closed forms (`harmony_analytical::exact`) byte-for-byte and
//!   logical work must be identical across schemes;
//! * **knob** — perturbed decomposition knobs (`pack = 2`, partial
//!   grouping), outside the closed forms' assumptions: the run must
//!   complete with every invariant oracle holding and logical work still
//!   identical;
//! * **fault** — seeded fault injection on a slack topology with the
//!   resilience layer armed: invariants must hold under pressure, the run
//!   must terminate within a bounded event count, and the summary must
//!   report a populated [`ResilienceOutcome`];
//! * **resil** — harsh direct faults (a 5% capacity squeeze, a 10% link)
//!   that are infeasible without the resilience layer: spill/reroute must
//!   absorb them and the run must still complete with every oracle green.
//!
//! [`ResilienceOutcome`]: harmony_trace::summary::ResilienceOutcome

use harmony::simulate::SchemeKind;
use harmony_models::ModelSpec;
use harmony_sched::{Fault, TimedFault, WorkloadConfig};
use harmony_topology::Topology;

use crate::differential::{check_swap_volumes_exact, check_work_equivalence, run_instrumented};
use crate::faults::FaultPlan;
use crate::oracles::OracleConfig;
use crate::workloads::{slack_topo, tight_topo, tight_workload, uniform_model};

/// Outcome of one scheme × configuration cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Cell family (`"exact"`, `"knob"`, `"fault"`, `"resil"`).
    pub family: &'static str,
    /// Scheme under test.
    pub scheme: SchemeKind,
    /// Configuration label, e.g. `"uniform6x4096 N=2 m=4"`.
    pub config: String,
    /// `Ok(())` or the first failure.
    pub result: Result<(), String>,
}

/// The full matrix result.
#[derive(Debug, Clone, Default)]
pub struct ConformanceReport {
    /// All cells, in run order.
    pub cells: Vec<CellOutcome>,
}

impl ConformanceReport {
    /// True when every cell passed.
    pub fn all_passed(&self) -> bool {
        self.cells.iter().all(|c| c.result.is_ok())
    }

    /// Number of failed cells.
    pub fn failures(&self) -> usize {
        self.cells.iter().filter(|c| c.result.is_err()).count()
    }

    /// Renders the pass/fail matrix as a text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Conformance matrix (oracle-instrumented runs)\n");
        out.push_str(&format!(
            "{:<6} {:<12} {:<28} {}\n",
            "family", "scheme", "config", "result"
        ));
        out.push_str(&"-".repeat(72));
        out.push('\n');
        for c in &self.cells {
            let verdict = match &c.result {
                Ok(()) => "PASS".to_string(),
                Err(e) => format!("FAIL: {e}"),
            };
            out.push_str(&format!(
                "{:<6} {:<12} {:<28} {}\n",
                c.family,
                c.scheme.name(),
                c.config,
                verdict
            ));
        }
        out.push_str(&format!(
            "\n{} cells, {} failed\n",
            self.cells.len(),
            self.failures()
        ));
        out
    }
}

/// One independent cell of the matrix: everything needed to evaluate it
/// in isolation (so cells can fan out on the work pool).
#[derive(Debug, Clone)]
struct CellSpec {
    family: &'static str,
    scheme: SchemeKind,
    config: String,
    model: ModelSpec,
    topo: Topology,
    w: WorkloadConfig,
    /// Attach the scheme-set-wide logical-work equivalence check to this
    /// cell (recorded against each config's first scheme).
    check_work: bool,
    /// Exact cells run the byte-exact differential check; others run
    /// oracle-instrumented only.
    exact: bool,
    faults: Vec<TimedFault>,
    event_budget: Option<u64>,
    /// Backoff seed when the resilience layer is armed; armed cells must
    /// complete with a populated `ResilienceOutcome` in the summary.
    resilience: Option<u64>,
}

impl CellSpec {
    /// Evaluates the cell. Pure function of the spec — deterministic and
    /// independent of every other cell, whatever thread runs it.
    fn evaluate(&self, oracles: &OracleConfig) -> CellOutcome {
        // The recompute oracle is workload-conditional (stashing cells
        // swap stashes legitimately), so each cell arms it for itself.
        let oracles = &OracleConfig {
            recompute_no_stash_fetch: self.w.recompute,
            ..*oracles
        };
        let mut result = if self.exact {
            check_swap_volumes_exact(self.scheme, &self.model, &self.topo, &self.w, oracles)
        } else {
            run_instrumented(
                self.scheme,
                &self.model,
                &self.topo,
                &self.w,
                oracles,
                &self.faults,
                self.event_budget,
                self.resilience,
            )
            .map_err(|e| e.to_string())
            .and_then(|summary| {
                // An armed cell with injected faults must surface the
                // typed outcome — "completed, but silently" is a failure.
                if self.resilience.is_some()
                    && !self.faults.is_empty()
                    && summary.resilience.is_none()
                {
                    Err("resilience armed but summary reports no outcome".to_string())
                } else {
                    Ok(())
                }
            })
        };
        if self.check_work {
            if let (Ok(()), Err(e)) = (
                &result,
                check_work_equivalence(&self.model, &self.topo, &self.w),
            ) {
                result = Err(format!("work equivalence: {e}"));
            }
        }
        CellOutcome {
            family: self.family,
            scheme: self.scheme,
            config: self.config.clone(),
            result,
        }
    }
}

/// Builds the matrix cell list in canonical (sequential) order.
fn build_matrix(seed: u64) -> Vec<CellSpec> {
    let mut specs = Vec::new();

    // Exact family: 2 models × 4 GPU counts × 3 microbatch counts ×
    // 5 schemes = 120 cells in the boundary-exact forms' pinned regime.
    // m = 1 pins the degenerate boundary the closed forms' `(4m+2)` /
    // `(2mN+2)` families silently glide over: a single microbatch per
    // GPU leaves no microbatch seams, so any off-by-one in the seam
    // corrections diverges exactly here.
    for &(layers, params) in &[(6usize, 4096u64), (8, 4096)] {
        let model = uniform_model(layers, params);
        for &n in &[1usize, 2, 3, 4] {
            let topo = tight_topo(n);
            for &m in &[1usize, 2, 4] {
                let w = tight_workload(m);
                let config = format!("{} N={n} m={m}", model.name);
                for scheme in SchemeKind::ALL {
                    specs.push(CellSpec {
                        family: "exact",
                        scheme,
                        config: config.clone(),
                        model: model.clone(),
                        topo: topo.clone(),
                        w,
                        // Logical-work equivalence is a property of the
                        // whole scheme set; record it against the first
                        // scheme's cell.
                        check_work: scheme == SchemeKind::BaselineDp,
                        exact: true,
                        faults: Vec::new(),
                        event_budget: None,
                        resilience: None,
                    });
                }
            }
        }
    }

    // Knob family: pack = 2 and partial grouping leave the closed forms'
    // regime; invariants and work equivalence must still hold.
    {
        let model = uniform_model(6, 4096);
        let topo = slack_topo(2);
        for (label, w) in [
            (
                "pack=2",
                WorkloadConfig {
                    pack_size: 2,
                    ..tight_workload(4)
                },
            ),
            (
                "group=2",
                WorkloadConfig {
                    group_size: Some(2),
                    ..tight_workload(4)
                },
            ),
            // Recompute replaces per-layer stashes with pack-boundary
            // recomputation (§4); outside the stash closed forms, so an
            // invariant-oracle cell: in particular no recomputed
            // activation may ever be fetched back from the host.
            (
                "recompute",
                WorkloadConfig {
                    recompute: true,
                    ..tight_workload(4)
                },
            ),
        ] {
            let config = format!("{} N=2 m=4 {label}", model.name);
            for scheme in SchemeKind::ALL {
                specs.push(CellSpec {
                    family: "knob",
                    scheme,
                    config: config.clone(),
                    model: model.clone(),
                    topo: topo.clone(),
                    w,
                    check_work: scheme == SchemeKind::BaselineDp,
                    exact: false,
                    faults: Vec::new(),
                    event_budget: None,
                    resilience: None,
                });
            }
        }
    }

    // Fault family: seeded perturbations on the slack topology with the
    // resilience layer armed. The event budget bounds termination;
    // oracles stay on throughout, and every cell must report a populated
    // resilience outcome (zero infeasible aborts).
    {
        let model = uniform_model(6, 4096);
        let topo = slack_topo(2);
        let w = tight_workload(4);
        let plan = FaultPlan::generate(seed, &topo, 0.002, 3);
        for scheme in SchemeKind::ALL {
            specs.push(CellSpec {
                family: "fault",
                scheme,
                config: format!("{} N=2 m=4 seed={seed}", model.name),
                model: model.clone(),
                topo: topo.clone(),
                w,
                check_work: false,
                exact: false,
                faults: plan.faults.clone(),
                event_budget: Some(1_000_000),
                resilience: Some(seed),
            });
        }
    }

    // Resil family: harsh direct faults that would abort the run without
    // the layer — an early 5% capacity squeeze (clamped to in-use bytes,
    // so later working sets no longer fit) plus a 10% link degradation.
    // Spill/reroute must absorb both on every scheme.
    {
        let model = uniform_model(6, 4096);
        let topo = slack_topo(2);
        let w = tight_workload(4);
        let faults = vec![
            TimedFault {
                at: 1e-4,
                fault: Fault::CapacitySqueeze {
                    gpu: 0,
                    factor: 0.05,
                },
            },
            TimedFault {
                at: 2e-4,
                fault: Fault::LinkBandwidth {
                    channel: 0,
                    factor: 0.10,
                },
            },
        ];
        for scheme in SchemeKind::ALL {
            specs.push(CellSpec {
                family: "resil",
                scheme,
                config: format!("{} N=2 m=4 harsh", model.name),
                model: model.clone(),
                topo: topo.clone(),
                w,
                check_work: false,
                exact: false,
                faults: faults.clone(),
                event_budget: Some(2_000_000),
                resilience: Some(seed ^ 0xD1FF),
            });
        }
    }

    specs
}

/// Runs the whole conformance matrix. `seed` drives fault generation
/// only; exact and knob cells are seed-independent. All oracles are
/// enabled in every cell.
///
/// Every cell is an independent oracle-instrumented simulation, so the
/// matrix fans out on the `harmony-parallel` work pool; the report's cell
/// order (and therefore its rendering) is the canonical sequential order
/// regardless of worker count.
pub fn run_conformance(seed: u64) -> ConformanceReport {
    run_conformance_filtered(seed, None)
}

/// [`run_conformance`] restricted to one scheme's cells (`repro
/// conformance --scheme NAME`). `None` runs the full matrix. Every
/// scheme appears in every family, so a filtered matrix is never empty;
/// the scheme-set-wide logical-work equivalence check only runs when its
/// anchor scheme (the set's first) is included.
pub fn run_conformance_filtered(seed: u64, scheme: Option<SchemeKind>) -> ConformanceReport {
    let oracles = OracleConfig::all();
    let specs: Vec<CellSpec> = build_matrix(seed)
        .into_iter()
        .filter(|c| scheme.is_none_or(|s| c.scheme == s))
        .collect();
    ConformanceReport {
        cells: harmony_parallel::par_map(&specs, |_, spec| spec.evaluate(&oracles)),
    }
}
