//! Differential scheme checking.
//!
//! Two independent predictions of each scheme exist in the workspace:
//! the closed-form swap-volume model of `harmony-analytical` and the
//! discrete-event simulator executing the scheme's actual plan. The
//! analytical crate carries that model at two precisions:
//!
//! * the **steady-state §3 forms** (crate root) — the paper's formulas,
//!   asymptotic in `m` and `L`; the simulator approaches them but is
//!   deterministically cheaper at schedule boundaries;
//! * the **boundary-exact forms** (`harmony_analytical::exact`) — the
//!   same model with the closed-form boundary corrections included.
//!
//! In the pinned regime (uniform layers, tight memory, `pack = 1`, full
//! grouping, SGD — see [`crate::workloads`]) the simulator must match
//! the boundary-exact forms **byte for byte** for every
//! schedule-independent class: weights, gradients, optimizer state, and
//! (where schedule-independent) p2p traffic. Any drift means one of the
//! two models changed meaning. [`compare_swap_volumes`] reports the
//! steady-state deltas for all six classes so convergence can be
//! eyeballed; [`check_swap_volumes_exact`] is the hard oracle.
//!
//! Independently of memory, all five schemes must decompose a training
//! iteration into the *same logical work* — identical per-layer
//! traversal multisets and FLOPs once replication is accounted for
//! ([`check_work_equivalence`]).

use harmony::simulate::{self, SchemeKind};
use harmony_analytical as analytical;
use harmony_analytical::exact::{
    grad_swap_volume_exact, opt_state_swap_volume_exact, p2p_volume_exact,
    weight_stash_swap_volume_exact, weight_swap_volume_exact, ExactParams,
};
use harmony_models::ModelSpec;
use harmony_sched::{ExecError, TimedFault, WorkloadConfig};
use harmony_topology::Topology;
use harmony_trace::summary::RunSummary;

use crate::oracles::{instrument, OracleConfig};

/// Plans and runs one scheme with oracles attached and optional fault
/// injection / event budget / resilience arming — the harness's single
/// entry point to the executor. `resilience` carries the backoff seed for
/// [`harmony_sched::SimExecutor::enable_resilience`]; `None` runs without
/// the layer.
#[allow(clippy::too_many_arguments)] // deliberate flat signature: every call site names all knobs
pub fn run_instrumented(
    scheme: SchemeKind,
    model: &ModelSpec,
    topo: &Topology,
    workload: &WorkloadConfig,
    oracles: &OracleConfig,
    faults: &[TimedFault],
    event_budget: Option<u64>,
    resilience: Option<u64>,
) -> Result<RunSummary, ExecError> {
    let (summary, _trace) = simulate::run_configured(scheme, model, topo, workload, |exec| {
        instrument(exec, oracles);
        exec.inject_faults(faults)?;
        if let Some(budget) = event_budget {
            exec.set_event_budget(budget);
        }
        if let Some(seed) = resilience {
            exec.enable_resilience(seed);
        }
        Ok(())
    })?;
    Ok(summary)
}

/// Boundary-exact parameters for a uniform model in this configuration.
///
/// Panics if the model's layers are not uniform — the exact forms (like
/// the §3 forms) assume they are, and a silent mismatch here would turn
/// the differential check into noise.
pub fn exact_params(model: &ModelSpec, topo: &Topology, workload: &WorkloadConfig) -> ExactParams {
    let first = &model.layers[0];
    assert!(
        model
            .layers
            .iter()
            .all(|l| l.weight_bytes() == first.weight_bytes()
                && l.out_bytes(workload.ubatch_size) == first.out_bytes(workload.ubatch_size)),
        "exact forms require uniform layers; {} is not",
        model.name
    );
    ExactParams::uniform(
        workload.microbatches as u64,
        topo.num_gpus() as u64,
        model.layers.len() as u64,
        first.weight_bytes(),
        first.out_bytes(workload.ubatch_size),
    )
}

/// One tensor class's expected-vs-measured volumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VolumeDelta {
    /// Tensor class (or `"p2p"`).
    pub class: &'static str,
    /// Closed-form prediction (bytes/iteration).
    pub expected: u64,
    /// Simulator-measured bytes.
    pub measured: u64,
}

impl VolumeDelta {
    /// Exact agreement?
    pub fn exact(&self) -> bool {
        self.expected == self.measured
    }
}

/// Runs `scheme` in the given configuration and compares every tensor
/// class's measured swap volume (plus p2p traffic) against the
/// **steady-state** closed forms. The deltas show boundary corrections
/// and schedule-sensitive classes; use [`check_swap_volumes_exact`] for
/// the byte-exact oracle.
pub fn compare_swap_volumes(
    scheme: SchemeKind,
    model: &ModelSpec,
    topo: &Topology,
    workload: &WorkloadConfig,
    oracles: &OracleConfig,
) -> Result<Vec<VolumeDelta>, ExecError> {
    let summary = run_instrumented(scheme, model, topo, workload, oracles, &[], None, None)?;
    let p = analytical::Params::from_model(
        model,
        workload.ubatch_size,
        workload.opt_slots,
        workload.microbatches as u64,
        topo.num_gpus() as u64,
    );
    let a = scheme.analytical();
    let class = |name: &str| summary.swap_by_class.get(name).copied().unwrap_or(0);
    Ok(vec![
        VolumeDelta {
            class: "weight",
            expected: analytical::weight_swap_volume(a, &p),
            measured: class("weight"),
        },
        VolumeDelta {
            class: "weight_stash",
            expected: analytical::weight_stash_swap_volume(a, &p),
            measured: class("weight_stash"),
        },
        VolumeDelta {
            class: "grad",
            expected: analytical::grad_swap_volume(a, &p),
            measured: class("grad"),
        },
        VolumeDelta {
            class: "opt_state",
            expected: analytical::opt_state_swap_volume(a, &p),
            measured: class("opt_state"),
        },
        VolumeDelta {
            class: "stash",
            expected: analytical::stash_swap_volume(a, &p),
            measured: class("stash"),
        },
        VolumeDelta {
            class: "activation",
            expected: analytical::act_swap_volume(a, &p),
            measured: class("activation"),
        },
        VolumeDelta {
            class: "p2p",
            expected: analytical::p2p_volume(a, &p),
            measured: summary.p2p_bytes,
        },
    ])
}

/// Asserts byte-exact agreement between the simulator and the
/// boundary-exact closed forms for every schedule-independent class:
///
/// * `weight`, `grad`, `opt_state` — exact for all five schemes;
/// * `p2p` — exact for both DP schemes (zero) and baseline-PP;
///   Harmony-PP's split between direct p2p and host bounces is
///   schedule-sensitive, so it is bounded instead: nonzero when `N > 1`
///   and never more than baseline-PP's boundary traffic.
///
/// Returns a human-readable error naming each diverging class.
pub fn check_swap_volumes_exact(
    scheme: SchemeKind,
    model: &ModelSpec,
    topo: &Topology,
    workload: &WorkloadConfig,
    oracles: &OracleConfig,
) -> Result<(), String> {
    let summary = run_instrumented(scheme, model, topo, workload, oracles, &[], None, None)
        .map_err(|e| format!("{} failed to run: {e}", scheme.name()))?;
    let p = exact_params(model, topo, workload);
    let a = scheme.analytical();
    let class = |name: &str| summary.swap_by_class.get(name).copied().unwrap_or(0);

    let mut bad: Vec<String> = Vec::new();
    let mut check = |name: &str, expected: u64, measured: u64| {
        if expected != measured {
            bad.push(format!(
                "{name}: expected {expected} B, measured {measured} B"
            ));
        }
    };
    check("weight", weight_swap_volume_exact(a, &p), class("weight"));
    check(
        "weight_stash",
        weight_stash_swap_volume_exact(a, &p),
        class("weight_stash"),
    );
    check("grad", grad_swap_volume_exact(a, &p), class("grad"));
    check(
        "opt_state",
        opt_state_swap_volume_exact(a, &p),
        class("opt_state"),
    );
    match p2p_volume_exact(a, &p) {
        Some(expected) => check("p2p", expected, summary.p2p_bytes),
        None => {
            // Harmony-PP: bound by baseline-PP's schedule-independent
            // boundary traffic.
            let cap = p2p_volume_exact(analytical::Scheme::BaselinePp, &p)
                .expect("baseline-pp p2p is schedule-independent");
            if summary.p2p_bytes > cap {
                bad.push(format!(
                    "p2p: measured {} B exceeds boundary-traffic cap {} B",
                    summary.p2p_bytes, cap
                ));
            }
            if topo.num_gpus() > 1 && summary.p2p_bytes == 0 {
                bad.push("p2p: expected nonzero stage-boundary traffic".into());
            }
        }
    }

    if bad.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} (m={}, N={}): {}",
            scheme.name(),
            workload.microbatches,
            topo.num_gpus(),
            bad.join("; ")
        ))
    }
}

/// Asserts all five schemes decompose the iteration into identical
/// logical work: per-layer forward/backward traversal counts, loss count,
/// and forward+backward FLOPs agree once each plan's graph is scaled by
/// its replica count, and every scheme updates each weight copy exactly
/// once.
pub fn check_work_equivalence(
    model: &ModelSpec,
    topo: &Topology,
    workload: &WorkloadConfig,
) -> Result<(), String> {
    let mut reference = None;
    for scheme in SchemeKind::ALL {
        let plan = simulate::plan(scheme, model, topo, workload)
            .map_err(|e| format!("{} failed to plan: {e}", scheme.name()))?;
        let sig = plan.graph.work_signature();
        // Per weight copy, each layer updates exactly once per iteration.
        if sig.upd_per_layer.iter().any(|&c| c != 1) {
            return Err(format!(
                "{}: per-copy update counts {:?} != 1 per layer",
                scheme.name(),
                sig.upd_per_layer
            ));
        }
        let scaled = sig.scaled(plan.replicas as u64);
        let fingerprint = (
            scaled.fwd_per_layer.clone(),
            scaled.bwd_per_layer.clone(),
            scaled.losses,
            scaled.fwd_bwd_flops,
        );
        match &reference {
            None => reference = Some((scheme, fingerprint)),
            Some((ref_scheme, ref_fp)) => {
                if *ref_fp != fingerprint {
                    return Err(format!(
                        "logical work diverges: {} {ref_fp:?} vs {} {fingerprint:?}",
                        ref_scheme.name(),
                        scheme.name()
                    ));
                }
            }
        }
    }
    Ok(())
}
