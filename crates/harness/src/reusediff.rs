//! Differential checking of the pooled sweep path: a
//! [`SweepSession`] run (memoized plan + recycled executor arenas,
//! DESIGN §14) against a fresh plan-and-construct run of the same cell.
//!
//! The pooled path must be **byte-identical** on everything a run
//! produces: the trace's JSON export and the summary's JSON export (with
//! the wall clocks `elapsed_secs`/`setup_secs` zeroed on both sides —
//! host measurement noise, not run identity). Errors must match too: an
//! infeasible cell must fail with the same message whether its plan was
//! freshly rejected or replayed from the session's error cache, and a
//! failed cell must leave the pool in a state that keeps *subsequent*
//! cells identical. Unlike `execdiff`, the memory-planning counters are
//! **not** stripped: both legs run the same manager core, so even the
//! how-it-was-computed counters must survive recycling bit-for-bit.
//!
//! The proptest in `tests/reusediff_proptest.rs` feeds this with random
//! cell sequences (schemes × knobs × eviction-policy overrides × armed
//! faults × iteration counts) at several worker counts; the
//! mutation-catch test arms the memory manager's
//! leak-one-plane-across-reset sabotage and requires the differential to
//! flag the leak.

use harmony::simulate::{self, SchemeKind};
use harmony::sweep::{CellSpec, SweepSession};
use harmony_models::ModelSpec;
use harmony_sched::{ExecError, SimExecutor, TimedFault};
use harmony_topology::Topology;
use harmony_trace::summary::RunSummary;

use crate::execdiff::first_diff;

/// One cell of a sweep sequence: the session-visible [`CellSpec`] plus
/// the executor configuration (faults, resilience) applied through the
/// `configure` hook on both legs.
#[derive(Debug, Clone)]
pub struct ReuseCell {
    /// Scheme, workload knobs, policy/prefetch overrides, iterations.
    pub cell: CellSpec,
    /// Timed faults injected into both legs.
    pub faults: Vec<TimedFault>,
    /// Resilience backoff seed ([`SimExecutor::enable_resilience`]);
    /// `None` leaves the layer off.
    pub resilience: Option<u64>,
}

impl ReuseCell {
    /// A clean cell: no faults, no resilience.
    pub fn new(scheme: SchemeKind, workload: harmony_sched::WorkloadConfig) -> Self {
        ReuseCell {
            cell: CellSpec::new(scheme, workload),
            faults: Vec::new(),
            resilience: None,
        }
    }
}

/// Canonical byte form of one cell's outcome: summary and trace JSON on
/// success, the error message on failure. Two legs agree iff their
/// `CellOutput`s are equal.
pub type CellOutput = Result<(String, String), String>;

/// What a matched fresh-vs-pooled sequence produced.
#[derive(Debug, Clone)]
pub struct ReuseDiffOutcome {
    /// Cells compared.
    pub cells: usize,
    /// Cells where both legs failed with the same message.
    pub matched_errors: usize,
    /// Total bytes of (identical) trace JSON across successful cells.
    pub trace_json_bytes: usize,
    /// Plan-cache hits the pooled session recorded over the sequence.
    pub plan_cache_hits: u64,
    /// Plan-cache misses the pooled session recorded over the sequence.
    pub plan_cache_misses: u64,
}

/// Zeroes the sanctioned nondeterminism (wall clocks) and serialises.
fn canon(mut s: RunSummary) -> String {
    s.elapsed_secs = 0.0;
    s.setup_secs = 0.0;
    s.to_json()
}

/// Runs one cell fresh: plan via [`simulate::plan`] with the cell's
/// overrides applied, a fresh [`SimExecutor`], no pooling anywhere.
/// This is the oracle leg — the code path every differential and bench
/// in the workspace already exercises.
pub fn run_fresh(model: &ModelSpec, topo: &Topology, rc: &ReuseCell) -> CellOutput {
    let fresh = || -> Result<(String, String), ExecError> {
        let mut plan = simulate::plan(rc.cell.scheme, model, topo, &rc.cell.workload)?;
        if let Some(policy) = rc.cell.policy {
            plan.scheme.policy = policy;
        }
        if rc.cell.prefetch {
            plan.scheme = plan.scheme.clone().with_prefetch();
            plan.name = format!("{}+prefetch", plan.name);
        }
        let mut exec = SimExecutor::with_iterations(topo, model, &plan, rc.cell.iterations)?;
        configure(&mut exec, rc)?;
        let (summary, trace) = exec.run()?;
        Ok((canon(summary), trace.to_json()))
    };
    fresh().map_err(|e| e.to_string())
}

/// Runs one cell through `session`'s pooled path, recycling the trace
/// back into the session afterwards (the differential keeps only the
/// JSON, so the arena can go straight back to work).
pub fn run_pooled(
    session: &mut SweepSession,
    model: &ModelSpec,
    topo: &Topology,
    rc: &ReuseCell,
) -> CellOutput {
    match session.run_configured(model, topo, &rc.cell, |exec| configure(exec, rc)) {
        Ok((summary, trace)) => {
            let tj = trace.to_json();
            session.recycle_trace(trace);
            Ok((canon(summary), tj))
        }
        Err(e) => Err(e.to_string()),
    }
}

/// The shared executor configuration of both legs.
fn configure(exec: &mut SimExecutor<'_>, rc: &ReuseCell) -> Result<(), ExecError> {
    if !rc.faults.is_empty() {
        exec.inject_faults(&rc.faults)?;
    }
    if let Some(seed) = rc.resilience {
        exec.enable_resilience(seed);
    }
    Ok(())
}

/// Runs `cells` in order through ONE pooled session and, cell by cell,
/// through the fresh path, and checks byte-identical outcomes — or
/// returns a message naming the first divergent cell and byte. Order
/// matters and is the point: cell *i*'s pooled leg runs on arenas dirtied
/// by cells *0..i*, so any state that survives a reset observably shows
/// up as a divergence at the first cell it taints.
pub fn check_cell_sequence(
    model: &ModelSpec,
    topo: &Topology,
    cells: &[ReuseCell],
) -> Result<ReuseDiffOutcome, String> {
    let mut session = SweepSession::new();
    let mut matched_errors = 0;
    let mut trace_json_bytes = 0;
    for (i, rc) in cells.iter().enumerate() {
        let pooled = run_pooled(&mut session, model, topo, rc);
        let fresh = run_fresh(model, topo, rc);
        match (pooled, fresh) {
            (Ok((ps, pt)), Ok((fs, ft))) => {
                if pt != ft {
                    return Err(format!(
                        "cell {i} ({}): {}",
                        rc.cell.scheme.name(),
                        first_diff("trace JSON", "pooled", "fresh", &pt, &ft)
                    ));
                }
                if ps != fs {
                    return Err(format!(
                        "cell {i} ({}): {}",
                        rc.cell.scheme.name(),
                        first_diff("summary JSON", "pooled", "fresh", &ps, &fs)
                    ));
                }
                trace_json_bytes += pt.len();
            }
            (Err(pe), Err(fe)) => {
                if pe != fe {
                    return Err(format!(
                        "cell {i} ({}): errors diverge: pooled `{pe}` vs fresh `{fe}`",
                        rc.cell.scheme.name()
                    ));
                }
                matched_errors += 1;
            }
            (Ok(_), Err(fe)) => {
                return Err(format!(
                    "cell {i} ({}): pooled succeeded but fresh failed: {fe}",
                    rc.cell.scheme.name()
                ));
            }
            (Err(pe), Ok(_)) => {
                return Err(format!(
                    "cell {i} ({}): fresh succeeded but pooled failed: {pe}",
                    rc.cell.scheme.name()
                ));
            }
        }
    }
    Ok(ReuseDiffOutcome {
        cells: cells.len(),
        matched_errors,
        trace_json_bytes,
        plan_cache_hits: session.plan_cache_hits(),
        plan_cache_misses: session.plan_cache_misses(),
    })
}

/// Runs `cells` through per-worker pooled sessions at an explicit worker
/// count ([`harmony_parallel::par_map_workers_with`]) and returns each
/// cell's canonical output in input order. Which session serves which
/// cell varies with claim interleaving; the outputs must not — the
/// worker-invariance proptest compares these against [`run_fresh`]
/// outputs for every worker count.
pub fn pooled_outputs_at(
    workers: usize,
    model: &ModelSpec,
    topo: &Topology,
    cells: &[ReuseCell],
) -> Vec<CellOutput> {
    harmony_parallel::par_map_workers_with(workers, cells, SweepSession::new, |session, _, rc| {
        run_pooled(session, model, topo, rc)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{tight_topo, tight_workload, uniform_model};
    use harmony_sched::PolicyKind;

    fn cells() -> Vec<ReuseCell> {
        let w2 = tight_workload(2);
        let w3 = tight_workload(3);
        vec![
            ReuseCell::new(SchemeKind::HarmonyDp, w2),
            ReuseCell::new(SchemeKind::BaselinePp, w3),
            ReuseCell {
                cell: CellSpec {
                    policy: Some(PolicyKind::Lru),
                    iterations: 2,
                    ..CellSpec::new(SchemeKind::HarmonyPp, w2)
                },
                faults: Vec::new(),
                resilience: None,
            },
            // Revisit the first cell: pure plan-cache hit + warm arenas.
            ReuseCell::new(SchemeKind::HarmonyDp, w2),
            // The 1F1B weight-stashing scheme and the recompute knob:
            // both must pool byte-identically, and the recompute cell
            // must miss the cache (the knob is part of the plan key — a
            // stashing plan reused for it would diverge immediately).
            ReuseCell::new(SchemeKind::Pipe1F1B, w2),
            ReuseCell::new(
                SchemeKind::HarmonyPp,
                harmony_sched::WorkloadConfig {
                    recompute: true,
                    ..w2
                },
            ),
            // Revisit the 1F1B cell: its stash-heavy plan must hit too.
            ReuseCell::new(SchemeKind::Pipe1F1B, w2),
        ]
    }

    #[test]
    fn pooled_sequence_is_byte_identical() {
        let model = uniform_model(4, 4096);
        let topo = tight_topo(2);
        let out = check_cell_sequence(&model, &topo, &cells()).expect("legs must agree");
        assert_eq!(out.cells, 7);
        assert_eq!(out.matched_errors, 0);
        assert!(out.trace_json_bytes > 0);
        assert_eq!(out.plan_cache_hits, 2, "both revisited cells must hit");
        assert_eq!(out.plan_cache_misses, 5);
    }

    #[test]
    fn infeasible_cells_fail_identically_and_poison_nothing() {
        let model = uniform_model(4, 4096);
        let topo = tight_topo(2);
        let mut seq = cells();
        // An unplannable cell (zero microbatches) between two good ones,
        // run twice so the second failure replays the cached error.
        let bad = ReuseCell::new(SchemeKind::HarmonyPp, tight_workload(0));
        seq.insert(1, bad.clone());
        seq.insert(3, bad);
        let out = check_cell_sequence(&model, &topo, &seq).expect("legs must agree");
        assert_eq!(out.cells, 9);
        assert_eq!(out.matched_errors, 2);
        assert_eq!(out.plan_cache_hits, 3, "two revisits + replayed error");
    }

    #[test]
    fn worker_counts_do_not_change_pooled_outputs() {
        let model = uniform_model(4, 4096);
        let topo = tight_topo(2);
        let seq = cells();
        let fresh: Vec<CellOutput> = seq.iter().map(|rc| run_fresh(&model, &topo, rc)).collect();
        for workers in [1usize, 2, 3, 8] {
            let pooled = pooled_outputs_at(workers, &model, &topo, &seq);
            assert_eq!(pooled, fresh, "workers = {workers} diverged from fresh");
        }
    }

    #[test]
    fn armed_reset_leak_is_caught() {
        let model = uniform_model(4, 4096);
        let topo = tight_topo(2);
        let mut session = SweepSession::new();
        // Cell A with a heavier working set than cell B, so A's leaked
        // peak plane is visible in B's peak_mem_bytes.
        let heavy = ReuseCell::new(SchemeKind::HarmonyDp, tight_workload(4));
        let light = ReuseCell::new(SchemeKind::HarmonyDp, tight_workload(1));
        let first = run_pooled(&mut session, &model, &topo, &heavy);
        assert!(first.is_ok(), "heavy cell must run: {first:?}");
        assert!(
            session.arm_leak_plane_across_reset(),
            "pool must hold a manager after a run"
        );
        let pooled = run_pooled(&mut session, &model, &topo, &light);
        let fresh = run_fresh(&model, &topo, &light);
        assert_ne!(
            pooled, fresh,
            "differential failed to catch the armed reset leak"
        );
        let (ps, _) = pooled.expect("leaked run still completes");
        assert!(
            ps.contains("peak_mem_bytes"),
            "summary JSON must still carry the leaked plane"
        );
    }
}
