//! Differential checking of the simulator's network core: the indexed
//! fast path (`Simulator::new`) against the dense reference engine
//! (`Simulator::new_dense_reference`, behind the simulator's
//! `dense_reference` feature), which re-derives every occupied route
//! class's fair-share rate on every network event.
//!
//! The two engines must be **bitwise** trace-identical: same completion
//! order, same `f64` time bit patterns, same tags, same channel
//! statistics. A script of interleaved submissions, drains, and
//! mid-flight bandwidth changes is replayed through both and the traces
//! compared entry by entry; the proptest in
//! `tests/simdiff_proptest.rs` feeds this with random scripts.

use harmony_simulator::{Completion, SimTime, Simulator};
use harmony_topology::presets::{commodity_server, CommodityParams, GBPS};
use harmony_topology::{Endpoint, Topology};

/// One step of a differential script. Indices are taken modulo the
/// topology's GPU/channel counts, so any values form a valid script.
#[derive(Debug, Clone)]
pub enum SimOp {
    /// Submit a compute kernel of `millis` ms on a GPU.
    Compute {
        /// GPU selector (mod num_gpus).
        gpu: usize,
        /// Kernel duration in milliseconds (clamped to ≥ 1).
        millis: u16,
    },
    /// Start a device→host transfer.
    ToHost {
        /// GPU selector (mod num_gpus).
        gpu: usize,
        /// Megabytes to move.
        mb: u16,
    },
    /// Start a host→device transfer.
    FromHost {
        /// GPU selector (mod num_gpus).
        gpu: usize,
        /// Megabytes to move.
        mb: u16,
    },
    /// Start a device→device transfer (skipped when src == dst).
    P2p {
        /// Source GPU selector (mod num_gpus).
        src: usize,
        /// Destination GPU selector (mod num_gpus).
        dst: usize,
        /// Megabytes to move.
        mb: u16,
    },
    /// Drain up to `n` completions before continuing, so later
    /// submissions and bandwidth changes land mid-flight.
    Drain {
        /// Maximum completions to deliver.
        n: usize,
    },
    /// Rescale one channel's bandwidth mid-flight.
    SetBandwidth {
        /// Channel selector (mod num_channels).
        channel: usize,
        /// New bandwidth in tenths of a GB/s (clamped to ≥ 1).
        tenths_gbps: u16,
    },
}

/// A trace entry: `(time_bits, kind, a, b)` where `kind` 0 is compute
/// (`a` = gpu), 1 is transfer (`a` = id), 2 is timer, and `b` is the
/// driver tag. Times are compared as bit patterns, not within an
/// epsilon — the engines must agree exactly.
pub type TraceEntry = (u64, u8, u64, u64);

fn entry(t: SimTime, c: Completion) -> TraceEntry {
    match c {
        Completion::Compute { gpu, tag } => (t.to_bits(), 0, gpu as u64, tag),
        Completion::Transfer { id, tag } => (t.to_bits(), 1, id, tag),
        Completion::Timer { tag } => (t.to_bits(), 2, 0, tag),
    }
}

/// The small contended topology differential scripts run on: three GPUs
/// behind one switch, PCIe at 2 GB/s, a 1 GB/s host uplink every
/// host-bound transfer fights over.
pub fn diff_topology() -> Topology {
    commodity_server(CommodityParams {
        num_gpus: 3,
        gpus_per_switch: 3,
        pcie_bw: 2.0 * GBPS,
        host_uplink_bw: GBPS,
        gpu_mem: 1 << 30,
        gpu_flops: 1e12,
    })
    .expect("differential topology is valid")
}

/// Replays `ops` on `sim`, draining everything still in flight at the
/// end, and returns the full completion trace. Tags are the op index,
/// so a divergence names the submission that produced it.
pub fn run_script(sim: &mut Simulator, topo: &Topology, ops: &[SimOp]) -> Vec<TraceEntry> {
    let gpus = topo.num_gpus();
    let channels = sim.num_channels();
    let mut trace = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let tag = i as u64;
        match *op {
            SimOp::Compute { gpu, millis } => {
                let secs = millis.max(1) as f64 / 1000.0;
                sim.submit_compute(gpu % gpus, secs, tag).expect("compute");
            }
            SimOp::ToHost { gpu, mb } => {
                let route = topo
                    .route(Endpoint::Gpu(gpu % gpus), Endpoint::Host)
                    .expect("route")
                    .to_vec();
                sim.start_transfer(&route, mb as u64 * 1_000_000, tag, (gpu % gpus) as u32)
                    .expect("to-host");
            }
            SimOp::FromHost { gpu, mb } => {
                let route = topo
                    .route(Endpoint::Host, Endpoint::Gpu(gpu % gpus))
                    .expect("route")
                    .to_vec();
                sim.start_transfer(&route, mb as u64 * 1_000_000, tag, (gpu % gpus) as u32)
                    .expect("from-host");
            }
            SimOp::P2p { src, dst, mb } => {
                let (src, dst) = (src % gpus, dst % gpus);
                if src != dst {
                    let route = topo
                        .route(Endpoint::Gpu(src), Endpoint::Gpu(dst))
                        .expect("route")
                        .to_vec();
                    sim.start_transfer(&route, mb as u64 * 1_000_000, tag, src as u32)
                        .expect("p2p");
                }
            }
            SimOp::Drain { n } => {
                for _ in 0..n {
                    match sim.next() {
                        Some((t, c)) => trace.push(entry(t, c)),
                        None => break,
                    }
                }
            }
            SimOp::SetBandwidth {
                channel,
                tenths_gbps,
            } => {
                let bw = tenths_gbps.max(1) as f64 * (GBPS / 10.0);
                sim.set_channel_bandwidth(channel % channels, bw)
                    .expect("set bandwidth");
            }
        }
    }
    while let Some((t, c)) = sim.next() {
        trace.push(entry(t, c));
    }
    trace
}

/// Runs `ops` through the fast engine and the dense reference and
/// returns the trace length, or an error naming the first divergent
/// trace entry. Channel statistics (byte tallies and busy-second bit
/// patterns) are compared too.
pub fn check_fast_vs_dense(ops: &[SimOp]) -> Result<usize, String> {
    let topo = diff_topology();
    let mut fast_sim = Simulator::new(&topo);
    let mut dense_sim = Simulator::new_dense_reference(&topo);
    let fast = run_script(&mut fast_sim, &topo, ops);
    let dense = run_script(&mut dense_sim, &topo, ops);
    if fast.len() != dense.len() {
        return Err(format!(
            "trace lengths diverge: fast {} vs dense {}",
            fast.len(),
            dense.len()
        ));
    }
    for (i, (f, d)) in fast.iter().zip(dense.iter()).enumerate() {
        if f != d {
            return Err(format!(
                "trace entry {i} diverges: fast {f:?} vs dense {d:?}"
            ));
        }
    }
    if fast_sim.stats().channel_bytes != dense_sim.stats().channel_bytes {
        return Err("channel byte tallies diverge".to_string());
    }
    let busy = |s: &Simulator| -> Vec<u64> {
        s.stats()
            .channel_busy_secs
            .iter()
            .map(|b| b.to_bits())
            .collect()
    };
    if busy(&fast_sim) != busy(&dense_sim) {
        return Err("channel busy-seconds bit patterns diverge".to_string());
    }
    Ok(fast.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_script_agrees() {
        assert_eq!(check_fast_vs_dense(&[]), Ok(0));
    }

    #[test]
    fn contended_script_agrees_bitwise() {
        let ops = vec![
            SimOp::ToHost { gpu: 0, mb: 48 },
            SimOp::ToHost { gpu: 1, mb: 32 },
            SimOp::FromHost { gpu: 2, mb: 16 },
            SimOp::Drain { n: 1 },
            SimOp::P2p {
                src: 0,
                dst: 1,
                mb: 24,
            },
            SimOp::SetBandwidth {
                channel: 0,
                tenths_gbps: 5,
            },
            SimOp::Compute { gpu: 2, millis: 3 },
            SimOp::Drain { n: 2 },
            SimOp::ToHost { gpu: 2, mb: 8 },
        ];
        let n = check_fast_vs_dense(&ops).expect("traces must agree");
        assert_eq!(n, 6, "every submission completes exactly once");
    }
}
