//! Deterministic fault-plan generation.
//!
//! A [`FaultPlan`] is a seeded, reproducible set of [`TimedFault`]s:
//! the same seed always yields the same perturbations, so a fault run is
//! as replayable as a clean one (the simulator itself is deterministic,
//! and faults enter through its ordered event queue).

use harmony::prelude::SplitMix64;
use harmony_sched::{Fault, TimedFault};
use harmony_topology::Topology;

/// A reproducible set of timed faults for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed the plan was generated from.
    pub seed: u64,
    /// The faults, in generation order (times need not be sorted; the
    /// simulator's event queue orders them).
    pub faults: Vec<TimedFault>,
}

impl FaultPlan {
    /// No faults — the clean-run control.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            faults: Vec::new(),
        }
    }

    /// Generates `count` faults for a run expected to last about
    /// `horizon_secs`, drawn deterministically from `seed`:
    ///
    /// * **link degradation** — a random channel drops to 25–90% of its
    ///   nominal bandwidth;
    /// * **capacity squeeze** — a random GPU's memory shrinks to 60–95%
    ///   of nominal (clamped internally so charged bytes still fit);
    /// * **compute jitter** — a random GPU's FLOP rate rescales to
    ///   50–150% of nominal.
    ///
    /// Fault times are spread over `(0, horizon_secs)`.
    ///
    /// Fault kinds that a degenerate topology cannot express are never
    /// emitted: link faults need at least one channel, squeezes and
    /// jitter at least one GPU. An impossible draw is *redrawn* (rather
    /// than silently remapped to another kind, which used to emit
    /// `ComputeJitter { gpu: 0 }` on a zero-GPU topology and skew the
    /// fault mix on a zero-channel one). On topologies where every kind
    /// is expressible the RNG stream is untouched, so existing seeded
    /// plans are unchanged. A topology with no GPUs *and* no channels
    /// yields an empty plan.
    pub fn generate(seed: u64, topo: &Topology, horizon_secs: f64, count: usize) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x9E37_79B9_7F4A_7C15);
        let channels = topo.channels().len();
        let gpus = topo.num_gpus();
        if channels == 0 && gpus == 0 {
            return FaultPlan {
                seed,
                faults: Vec::new(),
            };
        }
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            let at = rng.next_f64() * horizon_secs;
            let fault = loop {
                match rng.next_u64() % 3 {
                    0 if channels > 0 => {
                        break Fault::LinkBandwidth {
                            channel: (rng.next_u64() as usize) % channels,
                            factor: 0.25 + 0.65 * rng.next_f64(),
                        }
                    }
                    1 if gpus > 0 => {
                        break Fault::CapacitySqueeze {
                            gpu: (rng.next_u64() as usize) % gpus,
                            factor: 0.60 + 0.35 * rng.next_f64(),
                        }
                    }
                    2 if gpus > 0 => {
                        break Fault::ComputeJitter {
                            gpu: (rng.next_u64() as usize) % gpus,
                            factor: 0.50 + rng.next_f64(),
                        }
                    }
                    _ => continue, // inexpressible on this topology: redraw
                }
            };
            faults.push(TimedFault { at, fault });
        }
        FaultPlan { seed, faults }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::slack_topo;

    #[test]
    fn same_seed_same_plan() {
        let topo = slack_topo(2);
        let a = FaultPlan::generate(42, &topo, 1.0, 5);
        let b = FaultPlan::generate(42, &topo, 1.0, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let topo = slack_topo(2);
        let a = FaultPlan::generate(1, &topo, 1.0, 5);
        let b = FaultPlan::generate(2, &topo, 1.0, 5);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_topology_yields_empty_plan() {
        // No GPUs and no channels: no fault kind is expressible.
        let topo = harmony_topology::TopologyBuilder::new("empty")
            .build()
            .unwrap();
        for seed in 0..8 {
            let plan = FaultPlan::generate(seed, &topo, 1.0, 5);
            assert!(
                plan.faults.is_empty(),
                "inexpressible faults emitted: {plan:?}"
            );
        }
    }

    #[test]
    fn gpuless_topology_only_emits_link_faults() {
        // Channels but no GPUs (a switch fabric under test): squeezes and
        // jitter have no target, so every fault must be a link fault — the
        // old generator emitted `ComputeJitter { gpu: 0 }` here.
        let mut b = harmony_topology::TopologyBuilder::new("fabric");
        b.channel("c0", 1e9);
        b.channel("c1", 1e9);
        let topo = b.build().unwrap();
        for seed in 0..16 {
            for tf in FaultPlan::generate(seed, &topo, 1.0, 6).faults {
                assert!(
                    matches!(tf.fault, Fault::LinkBandwidth { channel, .. } if channel < 2),
                    "non-link fault on a zero-GPU topology: {:?}",
                    tf.fault
                );
            }
        }
    }

    #[test]
    fn channelless_topology_only_emits_gpu_faults() {
        let mut b = harmony_topology::TopologyBuilder::new("island");
        b.gpu(
            harmony_topology::GpuSpec {
                mem_bytes: 1 << 20,
                flops: 1e9,
            },
            0,
        );
        let topo = b.build().unwrap();
        let mut squeezes = 0;
        let mut jitters = 0;
        for seed in 0..16 {
            for tf in FaultPlan::generate(seed, &topo, 1.0, 6).faults {
                match tf.fault {
                    Fault::CapacitySqueeze { gpu, .. } => {
                        assert_eq!(gpu, 0);
                        squeezes += 1;
                    }
                    Fault::ComputeJitter { gpu, .. } => {
                        assert_eq!(gpu, 0);
                        jitters += 1;
                    }
                    other => panic!("link fault without channels: {other:?}"),
                }
            }
        }
        // The redraw keeps both remaining kinds in the mix.
        assert!(squeezes > 0 && jitters > 0);
    }

    #[test]
    fn full_topology_stream_is_unchanged_by_the_redraw_guard() {
        // On a topology where every kind is expressible, the guarded
        // generator must reproduce the historical plans bit for bit
        // (pinned conformance cells depend on seeded fault plans).
        let topo = slack_topo(2);
        let plan = FaultPlan::generate(9, &topo, 1.0, 12);
        assert_eq!(plan.faults.len(), 12);
        let kinds: std::collections::HashSet<u8> = plan
            .faults
            .iter()
            .map(|tf| match tf.fault {
                Fault::LinkBandwidth { .. } => 0u8,
                Fault::CapacitySqueeze { .. } => 1,
                Fault::ComputeJitter { .. } => 2,
            })
            .collect();
        assert_eq!(kinds.len(), 3, "all kinds drawn on a full topology");
    }

    #[test]
    fn factors_in_safe_ranges() {
        let topo = slack_topo(4);
        for seed in 0..32 {
            for tf in FaultPlan::generate(seed, &topo, 1.0, 4).faults {
                let ok = match tf.fault {
                    harmony_sched::Fault::LinkBandwidth { factor, .. } => {
                        (0.25..=0.90).contains(&factor)
                    }
                    harmony_sched::Fault::CapacitySqueeze { factor, .. } => {
                        (0.60..=0.95).contains(&factor)
                    }
                    harmony_sched::Fault::ComputeJitter { factor, .. } => {
                        (0.50..=1.50).contains(&factor)
                    }
                };
                assert!(ok, "fault out of range: {:?}", tf.fault);
                assert!(tf.at >= 0.0 && tf.at < 1.0);
            }
        }
    }
}
