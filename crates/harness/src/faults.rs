//! Deterministic fault-plan generation.
//!
//! A [`FaultPlan`] is a seeded, reproducible set of [`TimedFault`]s:
//! the same seed always yields the same perturbations, so a fault run is
//! as replayable as a clean one (the simulator itself is deterministic,
//! and faults enter through its ordered event queue).

use harmony::prelude::SplitMix64;
use harmony_sched::{Fault, TimedFault};
use harmony_topology::Topology;

/// A reproducible set of timed faults for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed the plan was generated from.
    pub seed: u64,
    /// The faults, in generation order (times need not be sorted; the
    /// simulator's event queue orders them).
    pub faults: Vec<TimedFault>,
}

impl FaultPlan {
    /// No faults — the clean-run control.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            faults: Vec::new(),
        }
    }

    /// Generates `count` faults for a run expected to last about
    /// `horizon_secs`, drawn deterministically from `seed`:
    ///
    /// * **link degradation** — a random channel drops to 25–90% of its
    ///   nominal bandwidth;
    /// * **capacity squeeze** — a random GPU's memory shrinks to 60–95%
    ///   of nominal (clamped internally so charged bytes still fit);
    /// * **compute jitter** — a random GPU's FLOP rate rescales to
    ///   50–150% of nominal.
    ///
    /// Fault times are spread over `(0, horizon_secs)`.
    pub fn generate(seed: u64, topo: &Topology, horizon_secs: f64, count: usize) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x9E37_79B9_7F4A_7C15);
        let channels = topo.channels().len();
        let gpus = topo.num_gpus();
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            let at = rng.next_f64() * horizon_secs;
            let fault = match rng.next_u64() % 3 {
                0 if channels > 0 => Fault::LinkBandwidth {
                    channel: (rng.next_u64() as usize) % channels,
                    factor: 0.25 + 0.65 * rng.next_f64(),
                },
                1 if gpus > 0 => Fault::CapacitySqueeze {
                    gpu: (rng.next_u64() as usize) % gpus,
                    factor: 0.60 + 0.35 * rng.next_f64(),
                },
                _ => Fault::ComputeJitter {
                    gpu: (rng.next_u64() as usize) % gpus.max(1),
                    factor: 0.50 + rng.next_f64(),
                },
            };
            faults.push(TimedFault { at, fault });
        }
        FaultPlan { seed, faults }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::slack_topo;

    #[test]
    fn same_seed_same_plan() {
        let topo = slack_topo(2);
        let a = FaultPlan::generate(42, &topo, 1.0, 5);
        let b = FaultPlan::generate(42, &topo, 1.0, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let topo = slack_topo(2);
        let a = FaultPlan::generate(1, &topo, 1.0, 5);
        let b = FaultPlan::generate(2, &topo, 1.0, 5);
        assert_ne!(a, b);
    }

    #[test]
    fn factors_in_safe_ranges() {
        let topo = slack_topo(4);
        for seed in 0..32 {
            for tf in FaultPlan::generate(seed, &topo, 1.0, 4).faults {
                let ok = match tf.fault {
                    harmony_sched::Fault::LinkBandwidth { factor, .. } => {
                        (0.25..=0.90).contains(&factor)
                    }
                    harmony_sched::Fault::CapacitySqueeze { factor, .. } => {
                        (0.60..=0.95).contains(&factor)
                    }
                    harmony_sched::Fault::ComputeJitter { factor, .. } => {
                        (0.50..=1.50).contains(&factor)
                    }
                };
                assert!(ok, "fault out of range: {:?}", tf.fault);
                assert!(tf.at >= 0.0 && tf.at < 1.0);
            }
        }
    }
}
