//! The conformance matrix's canonical workloads.
//!
//! The differential checker compares the simulator's *emergent* swap
//! volumes against the closed forms of `harmony-analytical`, which assume
//! the paper's §3 regime: uniform layers, one task working set resident at
//! a time, no optimizer-state slack. [`uniform_model`] + [`tight_topo`] +
//! [`tight_workload`] construct exactly that regime (mirroring the bench
//! crate's exact-cross-check fixtures; duplicated here because `bench`
//! depends on this crate).
//!
//! [`slack_topo`] provides headroom above the tight working set so fault
//! injection (capacity squeezes) can bite without making a task's working
//! set unsatisfiable.

use harmony_models::{LayerClass, LayerSpec, ModelSpec};
use harmony_sched::WorkloadConfig;
use harmony_topology::{presets, Topology};

/// A uniform-layer model: every layer has the same parameter count, FLOPs,
/// and activation footprint (the paper's "one type of layer" assumption).
pub fn uniform_model(layers: usize, params: u64) -> ModelSpec {
    ModelSpec {
        name: format!("uniform{layers}x{params}"),
        layers: (0..layers)
            .map(|i| LayerSpec {
                name: format!("L{i}"),
                class: LayerClass::Other,
                params,
                fwd_flops_per_sample: params * 2,
                out_elems_per_sample: 64,
                extra_stash_elems_per_sample: 128,
                in_elems_per_sample: 64,
            })
            .collect(),
        seq_len: 1,
    }
}

/// A tight server: 36 KiB of GPU memory admits exactly one backward
/// working set of the 16 KiB-weight uniform model under SGD, so eviction
/// gets no reuse at traversal turnarounds and measured volumes land on the
/// closed forms.
pub fn tight_topo(n: usize) -> Topology {
    presets::commodity_server(presets::CommodityParams {
        num_gpus: n,
        gpus_per_switch: n.max(1),
        pcie_bw: presets::GBPS,
        host_uplink_bw: presets::GBPS,
        gpu_mem: 36 * 1024,
        gpu_flops: 1e9,
    })
    .expect("valid params")
}

/// A server with capacity slack above [`tight_topo`]: capacity squeezes of
/// up to ~50% still leave room for one working set, so squeezed runs must
/// complete (degraded, never deadlocked).
pub fn slack_topo(n: usize) -> Topology {
    presets::commodity_server(presets::CommodityParams {
        num_gpus: n,
        gpus_per_switch: n.max(1),
        pcie_bw: presets::GBPS,
        host_uplink_bw: presets::GBPS,
        gpu_mem: 96 * 1024,
        gpu_flops: 1e9,
    })
    .expect("valid params")
}

/// A server where every GPU hangs off its own switch, so each GPU is its
/// own *contention atom* (DESIGN §12): host traffic of different GPUs
/// never shares a channel, which is the shape the sharded executor can
/// partition. Memory slack as in [`slack_topo`], so DP working sets fit
/// and capacity squeezes degrade instead of deadlocking.
pub fn atomized_topo(n: usize) -> Topology {
    presets::commodity_server(presets::CommodityParams {
        num_gpus: n,
        gpus_per_switch: 1,
        pcie_bw: presets::GBPS,
        host_uplink_bw: presets::GBPS,
        gpu_mem: 96 * 1024,
        gpu_flops: 1e9,
    })
    .expect("valid params")
}

/// Workload of the exactness regime: SGD (`opt_slots = 0`) keeps one
/// update working set inside [`tight_topo`]'s capacity; full grouping
/// (`group_size = None`) is the §3 analytical assumption.
pub fn tight_workload(m: usize) -> WorkloadConfig {
    WorkloadConfig {
        microbatches: m,
        ubatch_size: 1,
        pack_size: 1,
        opt_slots: 0,
        group_size: None,
        recompute: false,
    }
}
