//! # harmony-harness
//!
//! The conformance harness: machine-checkable evidence that the workspace's
//! independent models of Harmony agree with each other and with the
//! invariants the paper's design relies on.
//!
//! Three pillars:
//!
//! * **Invariant oracles** ([`oracles`]) — observers attached to the
//!   memory manager's and executor's hook points that panic the moment a
//!   runtime invariant breaks: device capacity (including in-flight
//!   reservations), residency-before-use, pin/unpin balance, clean-drop
//!   safety, task dependency order, per-channel bandwidth conservation,
//!   and end-of-run flush completeness. Production runs attach none and
//!   pay one branch per event.
//! * **Differential scheme checking** ([`differential`]) — every scheme
//!   is simulated in the §3 analytical regime and its per-class swap
//!   volumes must match `harmony-analytical`'s closed forms **exactly**;
//!   independently, all five schemes must decompose an iteration into
//!   identical logical work (per-layer traversal multisets and FLOPs).
//! * **Deterministic fault injection** ([`faults`]) — seeded link
//!   degradation, capacity squeezes, and compute jitter injected through
//!   the simulator's event queue; for a fixed seed the perturbed run is
//!   bit-reproducible, invariants must hold under pressure, and every
//!   scheme must still terminate.
//!
//! A fourth, narrower differential ([`simdiff`]) targets the simulator's
//! network core itself: random scripts of interleaved submissions,
//! drains, and mid-flight bandwidth changes are replayed through the
//! indexed fast path and the dense full-rescan reference engine, which
//! must produce bitwise-identical completion traces.
//!
//! A fifth ([`execdiff`]) does the same for the *executor's* event loop:
//! the wake-set fast path against the dense re-advance-everything
//! reference (behind `harmony-sched`'s `dense_advance` feature), which
//! must produce byte-identical trace and summary JSON across schemes,
//! fault plans, and prefetch settings.
//!
//! A sixth ([`reusediff`]) guards the sweep-throughput layer: random
//! cell sequences run through a pooled `SweepSession` (memoized plans,
//! recycled executor arenas) must be byte-identical — trace JSON,
//! summary JSON, matched errors — to the same cells run fresh, at any
//! worker count; an armed leak-one-plane-across-reset mutant must be
//! caught.
//!
//! [`conformance`] sweeps all of this over a scheme × configuration
//! matrix and renders a pass/fail table (`repro conformance` in
//! `harmony-bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod differential;
pub mod execdiff;
pub mod faults;
pub mod memdiff;
pub mod oracles;
pub mod reusediff;
pub mod simdiff;
pub mod workloads;

pub use conformance::{run_conformance, run_conformance_filtered, CellOutcome, ConformanceReport};
pub use differential::exact_params;
pub use differential::{
    check_swap_volumes_exact, check_work_equivalence, compare_swap_volumes, run_instrumented,
    VolumeDelta,
};
pub use execdiff::{check_dense_vs_fast, ExecDiffCase, ExecDiffOutcome};
pub use faults::FaultPlan;
pub use memdiff::{check_fast_vs_dense_memory, check_script, MemScriptOp};
pub use oracles::{
    check_stash_access, instrument, instrument_memory, OracleConfig, RecomputeFetchOracle,
    StashWindowOracle,
};
pub use reusediff::{check_cell_sequence, ReuseCell, ReuseDiffOutcome};
pub use simdiff::{check_fast_vs_dense, SimOp};
