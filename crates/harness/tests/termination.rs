//! Deadlock-freedom and graceful degradation.
//!
//! Every scheme on every topology preset must complete within a bounded
//! event count — with all oracles attached, and again with a capacity
//! squeeze injected mid-iteration. A run that stalls (a dependency cycle,
//! an eviction livelock, a transfer that never completes) exhausts the
//! event budget and surfaces as `ExecError::Stuck` instead of hanging
//! the test suite. Degrading a link must degrade throughput *gracefully*:
//! less bandwidth can only slow the run down, never wedge it.

use harmony::simulate::SchemeKind;
use harmony_harness::workloads::{slack_topo, tight_workload, uniform_model};
use harmony_harness::{run_instrumented, OracleConfig};
use harmony_sched::{Fault, TimedFault};
use harmony_topology::{presets, Topology};

const EVENT_BUDGET: u64 = 2_000_000;

fn preset_topos() -> Vec<(&'static str, Topology)> {
    vec![
        ("commodity_4x1080ti", presets::commodity_4x1080ti()),
        ("commodity_8gpu", presets::commodity_8gpu()),
        ("dgx1_like", presets::dgx1_like()),
        ("two_server_4x1080ti", presets::two_server_4x1080ti()),
        ("slack_2gpu", slack_topo(2)),
        ("slack_4gpu", slack_topo(4)),
    ]
}

/// Squeezes every GPU to 60% of nominal shortly after the run starts
/// (the manager clamps so already-charged bytes still fit).
fn squeeze_all(topo: &Topology, at: f64) -> Vec<TimedFault> {
    (0..topo.num_gpus())
        .map(|gpu| TimedFault {
            at,
            fault: Fault::CapacitySqueeze { gpu, factor: 0.60 },
        })
        .collect()
}

#[test]
fn every_scheme_terminates_on_every_preset() {
    let oracles = OracleConfig::all();
    for (name, topo) in preset_topos() {
        // Layers sized so the big presets run fast and the slack topos
        // stay memory-pressured.
        let params = if topo.gpu(0).unwrap().mem_bytes > 1 << 30 {
            1 << 20
        } else {
            4096
        };
        let model = uniform_model(8, params);
        let w = tight_workload(4);
        for scheme in SchemeKind::ALL {
            let clean = run_instrumented(
                scheme,
                &model,
                &topo,
                &w,
                &oracles,
                &[],
                Some(EVENT_BUDGET),
                None,
            );
            assert!(
                clean.is_ok(),
                "{} on {name}: clean run failed: {:?}",
                scheme.name(),
                clean.err()
            );
            let squeezed = run_instrumented(
                scheme,
                &model,
                &topo,
                &w,
                &oracles,
                &squeeze_all(&topo, 1e-6),
                Some(EVENT_BUDGET),
                None,
            );
            assert!(
                squeezed.is_ok(),
                "{} on {name}: capacity-squeezed run failed: {:?}",
                scheme.name(),
                squeezed.err()
            );
        }
    }
}

/// Throughput is monotone in link bandwidth: degrading every channel by
/// a larger factor can only increase the makespan. (Exact equality is
/// allowed — a run bottlenecked on compute shrugs off a mild squeeze.)
#[test]
fn throughput_degrades_monotonically_with_bandwidth() {
    let model = uniform_model(6, 4096);
    let topo = slack_topo(2);
    let w = tight_workload(4);
    let oracles = OracleConfig::all();
    for scheme in SchemeKind::ALL {
        let mut last_secs = 0.0f64;
        for factor in [1.0, 0.5, 0.25] {
            let faults: Vec<TimedFault> = (0..topo.channels().len())
                .map(|channel| TimedFault {
                    at: 0.0,
                    fault: Fault::LinkBandwidth { channel, factor },
                })
                .collect();
            let summary = run_instrumented(
                scheme,
                &model,
                &topo,
                &w,
                &oracles,
                &faults,
                Some(EVENT_BUDGET),
                None,
            )
            .unwrap_or_else(|e| panic!("{} at factor {factor}: {e}", scheme.name()));
            assert!(
                summary.sim_secs >= last_secs,
                "{}: makespan shrank from {last_secs} to {} when bandwidth \
                 dropped to {factor}x",
                scheme.name(),
                summary.sim_secs
            );
            last_secs = summary.sim_secs;
        }
    }
}
