//! The full conformance matrix must pass, and its exact family alone
//! must cover at least 48 scheme × configuration cells.

use harmony_harness::run_conformance;

#[test]
fn conformance_matrix_passes() {
    let report = run_conformance(0xC0FFEE);
    let exact = report.cells.iter().filter(|c| c.family == "exact").count();
    assert!(exact >= 48, "only {exact} exact cells");
    assert!(
        report.cells.len() >= 48,
        "only {} cells total",
        report.cells.len()
    );
    assert!(report.all_passed(), "failures:\n{}", report.render());
}

#[test]
fn conformance_is_seed_deterministic() {
    let a = run_conformance(7);
    let b = run_conformance(7);
    assert_eq!(a.render(), b.render());
}
