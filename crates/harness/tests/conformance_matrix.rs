//! The full conformance matrix must pass, and its exact family alone
//! must cover at least 120 scheme × configuration cells — including the
//! m = 1 boundary regression row and the pipe-1f1b scheme family.

use harmony_harness::run_conformance;

#[test]
fn conformance_matrix_passes() {
    let report = run_conformance(0xC0FFEE);
    let exact = report.cells.iter().filter(|c| c.family == "exact").count();
    assert!(exact >= 120, "only {exact} exact cells");
    assert!(
        report.cells.len() >= 145,
        "only {} cells total",
        report.cells.len()
    );
    // The boundary regression row and the new scheme family are pinned:
    // losing either shrinks the grid and must fail loudly.
    assert!(
        report
            .cells
            .iter()
            .any(|c| c.family == "exact" && c.config.ends_with("m=1")),
        "m=1 boundary cells missing from the exact family"
    );
    assert!(
        report
            .cells
            .iter()
            .any(|c| c.scheme.name() == "pipe-1f1b" && c.family == "exact"),
        "pipe-1f1b missing from the exact family"
    );
    assert!(
        report.cells.iter().any(|c| c.config.contains("recompute")),
        "recompute knob cells missing"
    );
    assert!(report.all_passed(), "failures:\n{}", report.render());
}

#[test]
fn conformance_is_seed_deterministic() {
    let a = run_conformance(7);
    let b = run_conformance(7);
    assert_eq!(a.render(), b.render());
}
