//! Property-based regression coverage for the memory manager's residency
//! state machine **under the harness's invariant oracles**: random
//! interleavings of begin/finish swap-in, swap-out, p2p, and free — with
//! moves left in flight between operations — must never trip the
//! capacity, residency-use, pin-balance, or clean-drop oracle. The
//! oracles panic on violation, so every generated case doubles as a
//! mutation trap: any accounting bug the manager develops fails here
//! with the exact operation sequence that exposed it.

use harmony_harness::{instrument_memory, OracleConfig};
use harmony_memory::{MemoryManager, Residency, TensorClass, TensorId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    RegisterHost(u64),
    AllocDevice(u64, usize),
    BeginSwapIn(usize, usize),
    BeginSwapOut(usize),
    BeginP2p(usize, usize),
    /// Completes the in-flight move at this index of the pending list —
    /// deliberately decoupled from the matching `Begin*` so moves overlap.
    Finish(usize),
    Pin(usize),
    Unpin(usize),
    Free(usize),
    Touch(usize),
    DropToHost(usize),
    MarkDirty(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (64u64..4000).prop_map(Op::RegisterHost),
        ((64u64..4000), (0usize..3)).prop_map(|(b, d)| Op::AllocDevice(b, d)),
        ((0usize..32), (0usize..3)).prop_map(|(t, d)| Op::BeginSwapIn(t, d)),
        (0usize..32).prop_map(Op::BeginSwapOut),
        ((0usize..32), (0usize..3)).prop_map(|(t, d)| Op::BeginP2p(t, d)),
        (0usize..8).prop_map(Op::Finish),
        (0usize..32).prop_map(Op::Pin),
        (0usize..32).prop_map(Op::Unpin),
        (0usize..32).prop_map(Op::Free),
        (0usize..32).prop_map(Op::Touch),
        (0usize..32).prop_map(Op::DropToHost),
        (0usize..32).prop_map(Op::MarkDirty),
    ]
}

fn on_device(mm: &MemoryManager, id: TensorId) -> bool {
    mm.info(id)
        .map(|i| matches!(i.residency, Residency::OnDevice(_)))
        .unwrap_or(false)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn random_interleavings_never_violate_oracles(
        ops in prop::collection::vec(op_strategy(), 1..150),
    ) {
        let mut mm = MemoryManager::new(vec![9_000u64, 5_000, 3_000]);
        // Oracles panic on violation — the property is that this whole
        // drive completes without one.
        instrument_memory(&mut mm, &OracleConfig::all());

        let mut ids: Vec<TensorId> = Vec::new();
        let mut in_flight: Vec<TensorId> = Vec::new();
        let classes = [TensorClass::Weight, TensorClass::Grad, TensorClass::Stash];

        for (i, op) in ops.into_iter().enumerate() {
            match op {
                Op::RegisterHost(b) => {
                    ids.push(mm.register_on_host("h", b, classes[i % classes.len()]));
                }
                Op::AllocDevice(b, d) => {
                    if let Ok(id) = mm.alloc_on_device("d", b, classes[i % classes.len()], d) {
                        ids.push(id);
                    }
                }
                Op::BeginSwapIn(t, d) => {
                    if let Some(&id) = ids.get(t) {
                        if mm.begin_swap_in(id, d).is_ok() {
                            in_flight.push(id);
                        }
                    }
                }
                Op::BeginSwapOut(t) => {
                    if let Some(&id) = ids.get(t) {
                        if mm.begin_swap_out(id).is_ok() {
                            in_flight.push(id);
                        }
                    }
                }
                Op::BeginP2p(t, d) => {
                    if let Some(&id) = ids.get(t) {
                        if mm.begin_p2p(id, d).is_ok() {
                            in_flight.push(id);
                        }
                    }
                }
                Op::Finish(k) => {
                    if !in_flight.is_empty() {
                        let id = in_flight.remove(k % in_flight.len());
                        let done = match mm.info(id).map(|i| i.residency) {
                            Ok(Residency::MovingToHost { .. }) => mm.finish_swap_out(id).is_ok(),
                            Ok(Residency::MovingToDevice { .. }) => {
                                mm.finish_move_to_device(id).is_ok()
                            }
                            _ => false,
                        };
                        prop_assert!(done, "in-flight tensor {id} failed to land");
                    }
                }
                Op::Pin(t) => {
                    // The driver respects the use contract (pin only while
                    // resident); the oracle checks the *manager* agrees.
                    if let Some(&id) = ids.get(t) {
                        if on_device(&mm, id) {
                            let _ = mm.pin(id);
                        }
                    }
                }
                Op::Unpin(t) => {
                    if let Some(&id) = ids.get(t) {
                        if mm.info(id).map(|i| i.pinned > 0).unwrap_or(false) {
                            let _ = mm.unpin(id);
                        }
                    }
                }
                Op::Free(t) => {
                    if let Some(&id) = ids.get(t) {
                        if mm.free(id).is_ok() {
                            in_flight.retain(|&f| f != id);
                        }
                    }
                }
                Op::Touch(t) => {
                    if let Some(&id) = ids.get(t) {
                        if on_device(&mm, id) {
                            let _ = mm.touch(id);
                        }
                    }
                }
                Op::DropToHost(t) => {
                    if let Some(&id) = ids.get(t) {
                        if mm.can_drop(id).unwrap_or(false) {
                            mm.drop_to_host(id).unwrap();
                        }
                    }
                }
                Op::MarkDirty(t) => {
                    if let Some(&id) = ids.get(t) {
                        let _ = mm.mark_dirty(id);
                    }
                }
            }
        }

        // Drain whatever is still in flight; oracles observe every landing.
        for id in in_flight {
            match mm.info(id).map(|i| i.residency) {
                Ok(Residency::MovingToHost { .. }) => {
                    mm.finish_swap_out(id).unwrap();
                }
                Ok(Residency::MovingToDevice { .. }) => {
                    mm.finish_move_to_device(id).unwrap();
                }
                _ => {}
            }
        }
    }
}
