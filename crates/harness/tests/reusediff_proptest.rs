//! Property-based differential check of the sweep-throughput layer:
//! random cell sequences — schemes × workload knobs × eviction-policy
//! overrides × prefetch × armed fault plans × iteration counts — run
//! through a pooled `SweepSession` must be **byte-identical** (trace
//! JSON, summary JSON with wall clocks zeroed, matched error strings) to
//! the same cells run fresh, both through one sequentially dirtied
//! session and through per-worker sessions at any worker count. A
//! mutation-catch test arms the memory manager's
//! leak-one-plane-across-reset sabotage and requires the differential to
//! flag it.

use harmony::simulate::SchemeKind;
use harmony::sweep::{CellSpec, SweepSession};
use harmony_harness::reusediff::{
    check_cell_sequence, pooled_outputs_at, run_fresh, run_pooled, CellOutput, ReuseCell,
};
use harmony_harness::workloads::{slack_topo, tight_topo, tight_workload, uniform_model};
use harmony_harness::FaultPlan;
use harmony_sched::{PolicyKind, WorkloadConfig};
use harmony_topology::Topology;
use proptest::prelude::*;

/// One raw generated cell, split in two to stay within the tuple arity
/// the proptest shim implements `Strategy` for: plan-shaping knobs
/// (scheme index, microbatches, policy-override index — 0 = none,
/// 1 = LRU, 2 = next-use-aware — prefetch, recompute) and run-shaping
/// knobs (iterations, fault seed, fault count, resilience).
type RawCell = ((usize, usize, usize, bool, bool), (u32, u64, usize, bool));

fn build_cells(raw: &[RawCell], topo: &Topology) -> Vec<ReuseCell> {
    raw.iter()
        .map(
            |&(
                (scheme_ix, m, policy_ix, prefetch, recompute),
                (iterations, seed, fault_count, res),
            )| {
                let workload = WorkloadConfig {
                    recompute,
                    ..tight_workload(m)
                };
                let policy = match policy_ix {
                    0 => None,
                    1 => Some(PolicyKind::Lru),
                    _ => Some(PolicyKind::NextUseAware),
                };
                ReuseCell {
                    cell: CellSpec {
                        policy,
                        prefetch,
                        iterations,
                        ..CellSpec::new(
                            SchemeKind::ALL[scheme_ix % SchemeKind::ALL.len()],
                            workload,
                        )
                    },
                    faults: FaultPlan::generate(seed, topo, 0.5, fault_count).faults,
                    resilience: res.then_some(seed),
                }
            },
        )
        .collect()
}

fn raw_cell() -> impl Strategy<Value = RawCell> {
    (
        (
            0usize..4,
            1usize..4,
            0usize..3,
            any::<bool>(),
            any::<bool>(),
        ),
        (1u32..3, 0u64..64, 0usize..3, any::<bool>()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The differential property: a sequence of random cells through ONE
    /// pooled session — each cell running on arenas dirtied by every
    /// cell before it — agrees byte for byte with fresh runs, and a
    /// doubled sequence (every cell revisited, guaranteeing plan-cache
    /// hits and error replays) agrees too.
    #[test]
    fn pooled_sequences_are_byte_identical(
        raw in proptest::collection::vec(raw_cell(), 2..5),
    ) {
        let model = uniform_model(4, 4096);
        // Slack capacity keeps random capacity squeezes satisfiable, so
        // most cells run to completion rather than matching on errors.
        let topo = slack_topo(2);
        let mut cells = build_cells(&raw, &topo);
        let doubled: Vec<ReuseCell> = cells.iter().chain(cells.iter()).cloned().collect();
        cells = doubled;
        match check_cell_sequence(&model, &topo, &cells) {
            Ok(out) => prop_assert!(
                out.plan_cache_hits >= (cells.len() / 2) as u64,
                "revisits must hit the plan cache: {out:?}"
            ),
            Err(divergence) => prop_assert!(false, "pooled leg diverged: {divergence}"),
        }
    }

    /// Worker invariance: per-worker sessions at any worker count produce
    /// exactly the fresh outputs, in input order, even though which
    /// session (with which dirty arenas) serves which cell varies with
    /// claim interleaving.
    #[test]
    fn worker_counts_do_not_change_pooled_outputs(
        raw in proptest::collection::vec(raw_cell(), 2..4),
        workers in 2usize..9,
    ) {
        let model = uniform_model(4, 4096);
        let topo = slack_topo(2);
        // Double the sequence so some cells repeat within a worker.
        let cells: Vec<ReuseCell> = {
            let c = build_cells(&raw, &topo);
            c.iter().chain(c.iter()).cloned().collect()
        };
        let fresh: Vec<CellOutput> =
            cells.iter().map(|rc| run_fresh(&model, &topo, rc)).collect();
        let pooled = pooled_outputs_at(workers, &model, &topo, &cells);
        prop_assert_eq!(pooled, fresh, "workers = {} diverged", workers);
    }

    /// The pressure regime (tight topology): eviction, demotion and
    /// spill traffic dominates — the paths where stale pooled state
    /// (victim indexes, residency lists, next-use cursors) would most
    /// plausibly leak across cells.
    #[test]
    fn pressure_regime_sequences_are_byte_identical(
        scheme_ix in 0usize..5,
        microbatches in 1usize..4,
        prefetch in any::<bool>(),
        iterations in 1u32..3,
    ) {
        let model = uniform_model(4, 4096);
        let topo = tight_topo(2);
        let heavy = ReuseCell {
            cell: CellSpec {
                prefetch,
                iterations,
                ..CellSpec::new(
                    SchemeKind::ALL[scheme_ix % SchemeKind::ALL.len()],
                    tight_workload(microbatches),
                )
            },
            faults: Vec::new(),
            resilience: None,
        };
        let light = ReuseCell::new(SchemeKind::BaselineDp, tight_workload(1));
        let cells = vec![heavy.clone(), light, heavy];
        if let Err(divergence) = check_cell_sequence(&model, &topo, &cells) {
            panic!("pressure sequence diverged: {divergence}");
        }
    }
}

/// The differential must actually have teeth: arm the memory manager's
/// leak-one-plane-across-reset mutant between a heavy and a light cell
/// and require the pooled leg to diverge from fresh (the leaked peak
/// plane surfaces in `peak_mem_bytes`).
#[test]
fn armed_reset_leak_is_caught_by_the_differential() {
    let model = uniform_model(4, 4096);
    let topo = tight_topo(2);
    let heavy = ReuseCell::new(SchemeKind::HarmonyDp, tight_workload(4));
    let light = ReuseCell::new(SchemeKind::HarmonyDp, tight_workload(1));
    let mut session = SweepSession::new();
    run_pooled(&mut session, &model, &topo, &heavy).expect("heavy cell must run");
    assert!(
        session.arm_leak_plane_across_reset(),
        "pool must hold a manager after a run"
    );
    let pooled = run_pooled(&mut session, &model, &topo, &light);
    let fresh = run_fresh(&model, &topo, &light);
    assert_ne!(
        pooled, fresh,
        "differential failed to catch the armed reset leak"
    );
    // The sabotage is one-shot: the next recycled build is clean again.
    let healed = run_pooled(&mut session, &model, &topo, &light);
    assert_eq!(healed, fresh, "leak must not persist past one reset");
}
