//! Properties of the resilience layer (DESIGN §10).
//!
//! 1. **No-abort**: with the layer armed, no seeded [`FaultPlan`]
//!    (schemes × topologies × fault counts) can abort a run — every run
//!    terminates with a summary, and a populated `ResilienceOutcome`
//!    whenever faults were injected.
//! 2. **No-abort under harsh pressure**: direct capacity squeezes far
//!    below the generator's gentle range (down to 1% of nominal) also
//!    complete, via spill-retry and the overcommit escalation.
//! 3. **Clean-run invisibility** (regression): with no faults injected,
//!    arming the layer changes neither the trace JSON nor the summary
//!    JSON, byte for byte, on any scheme.

use harmony::simulate::SchemeKind;
use harmony_harness::execdiff::{run_mode, ExecDiffCase};
use harmony_harness::workloads::{slack_topo, tight_workload, uniform_model};
use harmony_harness::{run_instrumented, FaultPlan, OracleConfig};
use harmony_sched::{Fault, TimedFault};
use proptest::prelude::*;

fn scheme_of(ix: usize) -> SchemeKind {
    SchemeKind::ALL[ix % SchemeKind::ALL.len()]
}

const EVENT_BUDGET: u64 = 5_000_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// No generated fault plan aborts an armed run; the outcome is
    /// populated exactly when faults were injected.
    #[test]
    fn no_fault_plan_aborts_with_resilience_enabled(
        scheme_ix in 0usize..5,
        gpus in 1usize..4,
        microbatches in 1usize..4,
        fault_seed in 0u64..256,
        fault_count in 0usize..6,
    ) {
        let scheme = scheme_of(scheme_ix);
        let model = uniform_model(6, 4096);
        let topo = slack_topo(gpus);
        let w = tight_workload(microbatches);
        let plan = FaultPlan::generate(fault_seed, &topo, 0.002, fault_count);
        let summary = run_instrumented(
            scheme,
            &model,
            &topo,
            &w,
            &OracleConfig::all(),
            &plan.faults,
            Some(EVENT_BUDGET),
            Some(fault_seed),
        )
        .unwrap_or_else(|e| {
            panic!(
                "{} N={gpus} m={microbatches} seed={fault_seed} count={fault_count} aborted: {e}",
                scheme.name()
            )
        });
        prop_assert_eq!(
            summary.resilience.is_some(),
            !plan.faults.is_empty(),
            "outcome populated iff faults were injected"
        );
    }

    /// Capacity squeezes far below the generator's range (1–30% of
    /// nominal, clamped internally to in-use bytes) hit every GPU and the
    /// run still completes: spill-retry plus the overcommit escalation
    /// guarantee forward progress.
    #[test]
    fn harsh_squeezes_complete_with_populated_outcome(
        scheme_ix in 0usize..5,
        gpus in 1usize..3,
        pct in 1u32..30,
        at_frac in 1u32..10,
    ) {
        let scheme = scheme_of(scheme_ix);
        let model = uniform_model(6, 4096);
        let topo = slack_topo(gpus);
        let w = tight_workload(2);
        let faults: Vec<TimedFault> = (0..gpus)
            .map(|gpu| TimedFault {
                at: 0.002 * (at_frac as f64) / 10.0,
                fault: Fault::CapacitySqueeze {
                    gpu,
                    factor: pct as f64 / 100.0,
                },
            })
            .collect();
        let summary = run_instrumented(
            scheme,
            &model,
            &topo,
            &w,
            &OracleConfig::all(),
            &faults,
            Some(EVENT_BUDGET),
            Some(99),
        )
        .unwrap_or_else(|e| {
            panic!(
                "{} N={gpus} squeeze={pct}% at {at_frac}/10 aborted: {e}",
                scheme.name()
            )
        });
        prop_assert!(summary.resilience.is_some());
    }
}

/// Regression: clean-run byte-identity with the layer armed. Trace JSON
/// and summary JSON (wall clock zeroed) must match the unarmed run
/// exactly, for every scheme — the layer is pure bookkeeping until a
/// fault actually fires.
#[test]
fn clean_runs_are_byte_identical_with_layer_on_and_off() {
    let model = uniform_model(6, 4096);
    let topo = slack_topo(2);
    let w = tight_workload(4);
    for scheme in SchemeKind::ALL {
        let run = |resilience: Option<u64>| {
            let case = ExecDiffCase {
                scheme,
                model: &model,
                topo: &topo,
                workload: &w,
                faults: &[],
                prefetch: true,
                iterations: 2,
                resilience,
            };
            let (mut summary, trace, _) =
                run_mode(&case, false).unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
            summary.elapsed_secs = 0.0;
            summary.setup_secs = 0.0;
            (summary.to_json(), trace.to_json())
        };
        let (s_off, t_off) = run(None);
        let (s_on, t_on) = run(Some(0xDEAD_BEEF));
        assert_eq!(
            s_off,
            s_on,
            "{}: summary changed by arming the layer on a clean run",
            scheme.name()
        );
        assert_eq!(
            t_off,
            t_on,
            "{}: trace changed by arming the layer on a clean run",
            scheme.name()
        );
    }
}
