//! The differential checker's pinned base matrix (Table-A regime):
//! byte-exact simulator ↔ analytical agreement for every scheme over
//! m ∈ {1..8}, N ∈ {1..4}, with all invariant oracles enabled.
//!
//! These 160 cells are the harness's ground truth. If a planner, the
//! executor, or the memory manager changes behaviour — an extra
//! eviction, a missed writeback, a reordered stage — some cell here
//! diverges from `harmony_analytical::exact` and names the class that
//! moved.

use harmony::simulate::SchemeKind;
use harmony_harness::workloads::{tight_topo, tight_workload, uniform_model};
use harmony_harness::{check_swap_volumes_exact, check_work_equivalence, OracleConfig};

/// L = 8 keeps every pipeline stage at ≥ 2 layers for N ≤ 4, so all
/// stages are memory-pressured (the regime the §3 analysis assumes).
/// The 160 cells are independent simulations and fan out on the work
/// pool; failures are collected in canonical cell order.
#[test]
fn table_a_exact_m1_to_8_n1_to_4() {
    let model = uniform_model(8, 4096);
    let oracles = OracleConfig::all();
    let mut cells = Vec::new();
    for n in 1..=4usize {
        let topo = tight_topo(n);
        for m in 1..=8usize {
            for scheme in SchemeKind::ALL {
                cells.push((topo.clone(), tight_workload(m), scheme));
            }
        }
    }
    assert_eq!(cells.len(), 160);
    let failures: Vec<String> = harmony_parallel::par_map(&cells, |_, (topo, w, scheme)| {
        check_swap_volumes_exact(*scheme, &model, topo, w, &oracles).err()
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        failures.is_empty(),
        "{} of 160 cells diverged:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// L = 6 with N = 3, 4 exercises uneven partitions (3+3 → 2+2+1+1) and
/// the resident single-layer-stage rule of the exact forms.
#[test]
fn uneven_and_resident_stage_partitions_stay_exact() {
    let model = uniform_model(6, 4096);
    let oracles = OracleConfig::all();
    for n in [3usize, 4] {
        let topo = tight_topo(n);
        for m in [1usize, 3, 5, 8] {
            let w = tight_workload(m);
            for scheme in SchemeKind::ALL {
                check_swap_volumes_exact(scheme, &model, &topo, &w, &oracles)
                    .unwrap_or_else(|e| panic!("L=6: {e}"));
            }
        }
    }
}

/// Logical work is scheme-invariant across the whole pinned matrix.
#[test]
fn work_equivalence_across_matrix() {
    for layers in [6usize, 8] {
        let model = uniform_model(layers, 4096);
        for n in 1..=4usize {
            let topo = tight_topo(n);
            for m in [1usize, 4, 8] {
                check_work_equivalence(&model, &topo, &tight_workload(m))
                    .unwrap_or_else(|e| panic!("L={layers} N={n} m={m}: {e}"));
            }
        }
    }
}
