//! Mutation-catch battery for the executor's hardened test equipment.
//!
//! A differential or structural check is only worth its runtime if it
//! *fails* when the thing it guards is actually broken. These tests arm
//! the `mutation_hooks` sabotage points in `harmony-sched` — a dropped
//! wake registration and a corrupted slab-handle generation — and assert
//! that the corresponding defense flags each one:
//!
//! - the execdiff differential (clean run vs sabotaged run) detects the
//!   dropped wake as an observable divergence — the sabotaged run gets
//!   stuck where the clean run completes;
//! - the transfer slab's generational index surfaces the corrupted
//!   handle as a typed [`ExecError`] stale-handle error, never a silent
//!   misread of a recycled slot.
//!
//! Both hooks are single-shot and disarm themselves after firing, so a
//! passing run here proves the sabotage actually executed (an armed hook
//! that never fires leaves the run clean and the assertions below fail).

use harmony::simulate::{self, SchemeKind};
use harmony_harness::workloads::{tight_topo, tight_workload, uniform_model};
use harmony_sched::{ExecError, SimExecutor};

/// Builds the executor for the reference mutation-catch scenario: a
/// Harmony-PP run under memory pressure on a 2-GPU server, whose stage
/// handoffs and swap traffic exercise both tensor-waiter registration
/// (for the wake drop) and pooled transfer completions (for the slab
/// corruption).
fn build_exec<'a>(
    model: &'a harmony_models::ModelSpec,
    topo: &'a harmony_topology::Topology,
    plan: &'a harmony_sched::ExecutionPlan,
) -> SimExecutor<'a> {
    SimExecutor::with_iterations(topo, model, plan, 2).expect("valid plan")
}

#[test]
fn execdiff_flags_a_dropped_wake_registration() {
    let model = uniform_model(8, 4096);
    let topo = tight_topo(2);
    let w = tight_workload(4);
    let plan = simulate::plan(SchemeKind::HarmonyPp, &model, &topo, &w).expect("plan");

    // Clean control leg: the same configuration completes.
    let clean = build_exec(&model, &topo, &plan).run();
    let (clean_summary, clean_trace) = clean.expect("clean run completes");

    // Sabotaged leg: one tensor-waiter registration is silently skipped —
    // the bug class a wake-set event loop can have (a stalled GPU never
    // re-advanced). The differential must observe a divergence.
    let mut sabotaged = build_exec(&model, &topo, &plan);
    sabotaged.arm_drop_wake();
    match sabotaged.run() {
        Err(ExecError::Stuck(msg)) => {
            // The strongest observable: the run wedges and names the
            // stalled GPU, exactly what execdiff reports as fast-vs-dense
            // error divergence.
            assert!(msg.contains("gpu"), "stuck message names a gpu: {msg}");
        }
        Err(other) => panic!("expected a stuck run, got a different error: {other}"),
        Ok((summary, trace)) => {
            // If the schedule happens to tolerate the lost wake through a
            // later wake of the same GPU, the runs must still be
            // byte-identical to count as undetected — and they are not
            // allowed to be.
            assert!(
                trace.to_json() != clean_trace.to_json()
                    || summary.to_json() != clean_summary.to_json(),
                "a dropped wake registration must be observable: the \
                 sabotaged run produced byte-identical output"
            );
        }
    }
}

#[test]
fn slab_generation_check_flags_a_corrupted_handle() {
    let model = uniform_model(8, 4096);
    let topo = tight_topo(2);
    let w = tight_workload(4);
    let plan = simulate::plan(SchemeKind::HarmonyPp, &model, &topo, &w).expect("plan");

    let mut sabotaged = build_exec(&model, &topo, &plan);
    sabotaged.arm_corrupt_slab_generation();
    let err = sabotaged
        .run()
        .expect_err("a corrupted slab-handle generation must not pass silently");
    match err {
        ExecError::Slab(e) => {
            let msg = e.to_string();
            assert!(
                msg.contains("stale handle"),
                "the generational index names the staleness: {msg}"
            );
        }
        other => panic!("expected the typed slab error, got: {other}"),
    }
}
