//! Property-based differential check of the executor's event loop:
//! random models × schemes × workloads × seeded fault plans × prefetch
//! settings must drive the wake-set fast loop and the dense
//! re-advance-everything reference to **byte-identical** trace and
//! summary JSON. A second pillar pins the structural claim with
//! [`ExecCounters`]: the wake-set loop must not rescan every GPU per
//! event, i.e. an unrelated completion does not re-advance idle GPUs.

use harmony::simulate::SchemeKind;
use harmony_harness::execdiff::{check_dense_vs_fast, check_sharded_vs_unsharded, ExecDiffCase};
use harmony_harness::workloads::{
    atomized_topo, slack_topo, tight_topo, tight_workload, uniform_model,
};
use harmony_harness::FaultPlan;
use proptest::prelude::*;

fn scheme_of(ix: usize) -> SchemeKind {
    SchemeKind::ALL[ix % SchemeKind::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The differential property itself: any configuration agrees byte
    /// for byte — trace JSON, summary JSON, or identical errors.
    #[test]
    fn wake_set_and_dense_loops_are_byte_identical(
        scheme_ix in 0usize..5,
        layers in 2usize..7,
        microbatches in 1usize..4,
        gpus in 1usize..4,
        prefetch in any::<bool>(),
        iterations in 1u32..3,
        fault_seed in 0u64..64,
        fault_count in 0usize..4,
        resilience in any::<bool>(),
    ) {
        let model = uniform_model(layers, 4096);
        // Slack capacity keeps random capacity squeezes satisfiable, so
        // most cases exercise full runs rather than matched errors.
        let topo = slack_topo(gpus);
        let w = tight_workload(microbatches);
        let faults = FaultPlan::generate(fault_seed, &topo, 0.5, fault_count);
        let case = ExecDiffCase {
            scheme: scheme_of(scheme_ix),
            model: &model,
            topo: &topo,
            workload: &w,
            faults: &faults.faults,
            prefetch,
            iterations,
            // Half the cases arm the resilience layer: degraded runs must
            // stay byte-identical across loops, clean runs byte-identical
            // with the layer on or off (checked by the harness grid).
            resilience: resilience.then_some(fault_seed),
        };
        if let Err(divergence) = check_dense_vs_fast(&case) {
            panic!("loops diverged: {divergence}\ncase: {case:?}");
        }
    }

    /// The sharded executor's byte-identity contract under randomized
    /// inputs: any replica-aligned DP configuration — including seeded
    /// fault plans and armed resilience — must merge per-shard runs into
    /// the exact bytes of the whole run, at any shard count (DESIGN §12).
    #[test]
    fn sharded_and_whole_runs_are_byte_identical(
        harmony in any::<bool>(),
        layers in 2usize..7,
        microbatches in 1usize..4,
        gpus in 2usize..5,
        shards in 2usize..6,
        iterations in 1u32..3,
        fault_seed in 0u64..64,
        fault_count in 0usize..4,
        resilience in any::<bool>(),
    ) {
        let model = uniform_model(layers, 4096);
        // One contention atom per GPU, so requested shard counts up to
        // the GPU count actually split the run.
        let topo = atomized_topo(gpus);
        let w = tight_workload(microbatches);
        let faults = FaultPlan::generate(fault_seed, &topo, 0.5, fault_count);
        let case = ExecDiffCase {
            scheme: if harmony { SchemeKind::HarmonyDp } else { SchemeKind::BaselineDp },
            model: &model,
            topo: &topo,
            workload: &w,
            faults: &faults.faults,
            prefetch: false,
            iterations,
            resilience: resilience.then_some(fault_seed),
        };
        if let Err(divergence) = check_sharded_vs_unsharded(&case, shards) {
            panic!("sharded run diverged: {divergence}\ncase: {case:?} shards: {shards}");
        }
    }

    /// Under memory pressure (the tight topology), eviction, demotion,
    /// and fetch-stall traffic dominates — the paths where a missed wake
    /// would deadlock or reorder the trace.
    #[test]
    fn pressure_regime_agrees_byte_for_byte(
        scheme_ix in 0usize..5,
        layers in 2usize..6,
        microbatches in 1usize..4,
        gpus in 1usize..3,
        prefetch in any::<bool>(),
    ) {
        let model = uniform_model(layers, 4096);
        let topo = tight_topo(gpus);
        let w = tight_workload(microbatches);
        let case = ExecDiffCase {
            scheme: scheme_of(scheme_ix),
            model: &model,
            topo: &topo,
            workload: &w,
            faults: &[],
            prefetch,
            iterations: 1,
            resilience: None,
        };
        if let Err(divergence) = check_dense_vs_fast(&case) {
            panic!("loops diverged: {divergence}\ncase: {case:?}");
        }
    }
}

/// The complexity contract, pinned structurally: on a pipelined
/// multi-GPU run the dense loop advances every GPU after every event,
/// while the wake-set loop advances only the affected ones — an
/// unrelated completion must not re-advance idle GPUs. If the wake set
/// degenerated back to a full rescan, `fast.advance_calls` would track
/// `dense.advance_calls` instead of sitting far below half of it.
#[test]
fn wake_set_does_not_rescan_all_gpus_per_event() {
    let model = uniform_model(8, 4096);
    let topo = tight_topo(4);
    let w = tight_workload(4);
    let out = check_dense_vs_fast(&ExecDiffCase {
        scheme: SchemeKind::HarmonyPp,
        model: &model,
        topo: &topo,
        workload: &w,
        faults: &[],
        prefetch: false,
        iterations: 2,
        resilience: None,
    })
    .expect("modes must agree");
    assert!(out.error.is_none(), "run must complete");
    assert!(
        out.fast.advance_calls < out.dense.advance_calls / 2,
        "wake-set loop still rescans: fast {} vs dense {}",
        out.fast.advance_calls,
        out.dense.advance_calls
    );
    // The counters themselves must be internally consistent.
    assert_eq!(
        out.fast.advance_calls,
        out.fast.wake_set_hits + out.fast.spurious_wakes
    );
    assert_eq!(
        out.dense.advance_calls,
        out.dense.wake_set_hits + out.dense.spurious_wakes
    );
    // Label interning is plan-bounded, not event-bounded: the wake-set
    // run interns exactly as many labels as the dense run.
    assert_eq!(out.fast.label_interns, out.dense.label_interns);
}

/// Matched-error equivalence: a model with one oversized layer (its
/// working set alone exceeds the tight topology's device capacity) must
/// fail — with the identical error — in both modes, mid-run, after the
/// feasible layers have already executed.
#[test]
fn infeasible_runs_fail_identically() {
    use harmony_models::{LayerClass, LayerSpec, ModelSpec};
    let mut model = uniform_model(3, 1024);
    model.layers.push(LayerSpec {
        name: "huge".to_string(),
        class: LayerClass::Other,
        // 256 KiB of weights alone, against 36 KiB of device memory.
        params: 65536,
        fwd_flops_per_sample: 131072,
        out_elems_per_sample: 64,
        extra_stash_elems_per_sample: 128,
        in_elems_per_sample: 64,
    });
    let model = ModelSpec {
        name: "lopsided".to_string(),
        layers: model.layers,
        seq_len: 1,
    };
    let topo = tight_topo(2);
    let w = tight_workload(2);
    let out = check_dense_vs_fast(&ExecDiffCase {
        scheme: SchemeKind::BaselineDp,
        model: &model,
        topo: &topo,
        workload: &w,
        faults: &[],
        prefetch: false,
        iterations: 1,
        resilience: None,
    })
    .expect("modes must agree (even on failure)");
    assert!(
        out.error.is_some(),
        "a 256 KiB working set cannot fit 36 KiB of device memory"
    );
    // The resilience layer only absorbs *post-fault* shortfalls: with no
    // faults injected, an infeasible run must fail with the identical
    // error even when the layer is armed.
    let out = check_dense_vs_fast(&ExecDiffCase {
        scheme: SchemeKind::BaselineDp,
        model: &model,
        topo: &topo,
        workload: &w,
        faults: &[],
        prefetch: false,
        iterations: 1,
        resilience: Some(7),
    })
    .expect("modes must agree (even on failure)");
    assert!(
        out.error.is_some(),
        "clean infeasible runs must still fail with resilience armed"
    );
}
