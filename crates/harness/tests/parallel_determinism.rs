//! Thread-count determinism: the parallel execution layer must be
//! invisible in results. The conformance matrix, the pinned exact cells,
//! and the Performance Tuner's sweep have to produce byte-identical
//! output at 1, 2, and N workers — the tier-1 gate for parallelism
//! regressions (`./verify` runs this test explicitly).

use harmony::simulate::SchemeKind;
use harmony_harness::workloads::{tight_topo, tight_workload, uniform_model};
use harmony_harness::{check_swap_volumes_exact, run_conformance, OracleConfig};
use harmony_parallel::with_workers;
use harmony_sched::{plan_harmony_pp, tuner, WorkloadConfig};

const WORKER_COUNTS: [usize; 3] = [2, 3, 8];

#[test]
fn conformance_matrix_is_identical_across_worker_counts() {
    let sequential = with_workers(1, || run_conformance(0xC0FFEE));
    for w in WORKER_COUNTS {
        let parallel = with_workers(w, || run_conformance(0xC0FFEE));
        assert_eq!(
            parallel.render(),
            sequential.render(),
            "conformance render diverged at {w} workers"
        );
        // Byte-identical beyond the rendering: same cells, same order,
        // same verdicts.
        assert_eq!(parallel.cells.len(), sequential.cells.len());
        for (p, s) in parallel.cells.iter().zip(&sequential.cells) {
            assert_eq!(p.family, s.family);
            assert_eq!(p.scheme, s.scheme);
            assert_eq!(p.config, s.config);
            assert_eq!(p.result, s.result);
        }
    }
}

#[test]
fn pinned_exact_cells_are_identical_across_worker_counts() {
    let model = uniform_model(8, 4096);
    let oracles = OracleConfig::all();
    let mut cells = Vec::new();
    for n in [1usize, 3] {
        let topo = tight_topo(n);
        for m in [1usize, 5, 8] {
            for scheme in SchemeKind::ALL {
                cells.push((topo.clone(), tight_workload(m), scheme));
            }
        }
    }
    let run = || {
        harmony_parallel::par_map(&cells, |_, (topo, w, scheme)| {
            check_swap_volumes_exact(*scheme, &model, topo, w, &oracles)
        })
    };
    let sequential = with_workers(1, run);
    for w in WORKER_COUNTS {
        assert_eq!(
            with_workers(w, run),
            sequential,
            "pinned cells diverged at {w} workers"
        );
    }
}

#[test]
fn tuner_sweep_is_identical_across_worker_counts() {
    let model = uniform_model(8, 4096);
    let topo = tight_topo(2);
    let base = WorkloadConfig {
        microbatches: 2,
        ubatch_size: 1,
        pack_size: 1,
        opt_slots: 0,
        group_size: None,
        recompute: false,
    };
    let sweep = || {
        tuner::tune(&model, &topo, &base, &[1, 2, 4], &[1, 2, 4], |m, w| {
            plan_harmony_pp(m, 2, w).map_err(|e| e.to_string())
        })
    };
    let sequential = with_workers(1, sweep);
    for w in WORKER_COUNTS {
        let parallel = with_workers(w, sweep);
        assert_eq!(parallel, sequential, "tuner sweep diverged at {w} workers");
    }
}
