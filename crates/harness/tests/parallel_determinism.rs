//! Thread-count determinism: the parallel execution layer must be
//! invisible in results. The conformance matrix, the pinned exact cells,
//! and the Performance Tuner's sweep have to produce byte-identical
//! output at 1, 2, and N workers — the tier-1 gate for parallelism
//! regressions (`./verify` runs this test explicitly).

use harmony::simulate::SchemeKind;
use harmony_harness::execdiff::{run_mode, run_sharded_mode, ExecDiffCase};
use harmony_harness::workloads::{atomized_topo, tight_topo, tight_workload, uniform_model};
use harmony_harness::{check_swap_volumes_exact, run_conformance, OracleConfig};
use harmony_parallel::with_workers;
use harmony_sched::{plan_harmony_pp, tuner, Fault, TimedFault, WorkloadConfig};

const WORKER_COUNTS: [usize; 3] = [2, 3, 8];

/// Requested shard counts for the sharded-executor determinism gate: the
/// unsharded-fallback case (1), balanced and unbalanced partitions of a
/// 3-atom server (2, 3), and an over-ask that must clamp to the atom
/// count (8).
const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

#[test]
fn conformance_matrix_is_identical_across_worker_counts() {
    let sequential = with_workers(1, || run_conformance(0xC0FFEE));
    for w in WORKER_COUNTS {
        let parallel = with_workers(w, || run_conformance(0xC0FFEE));
        assert_eq!(
            parallel.render(),
            sequential.render(),
            "conformance render diverged at {w} workers"
        );
        // Byte-identical beyond the rendering: same cells, same order,
        // same verdicts.
        assert_eq!(parallel.cells.len(), sequential.cells.len());
        for (p, s) in parallel.cells.iter().zip(&sequential.cells) {
            assert_eq!(p.family, s.family);
            assert_eq!(p.scheme, s.scheme);
            assert_eq!(p.config, s.config);
            assert_eq!(p.result, s.result);
        }
    }
}

#[test]
fn pinned_exact_cells_are_identical_across_worker_counts() {
    let model = uniform_model(8, 4096);
    let oracles = OracleConfig::all();
    let mut cells = Vec::new();
    for n in [1usize, 3] {
        let topo = tight_topo(n);
        for m in [1usize, 5, 8] {
            for scheme in SchemeKind::ALL {
                cells.push((topo.clone(), tight_workload(m), scheme));
            }
        }
    }
    let run = || {
        harmony_parallel::par_map(&cells, |_, (topo, w, scheme)| {
            check_swap_volumes_exact(*scheme, &model, topo, w, &oracles)
        })
    };
    let sequential = with_workers(1, run);
    for w in WORKER_COUNTS {
        assert_eq!(
            with_workers(w, run),
            sequential,
            "pinned cells diverged at {w} workers"
        );
    }
}

#[test]
fn sharded_runs_are_identical_across_shard_and_worker_counts() {
    let model = uniform_model(4, 4096);
    let topo = atomized_topo(3);
    let w = tight_workload(2);
    // Mid-run faults that perturb but never deadlock the slack topology:
    // a compute slowdown on replica 1 and a capacity squeeze on replica
    // 2, so shard merges are exercised on an asymmetric timeline with
    // the faulted lanes split across shards. The jitter factor is
    // deliberately grid-aligned (0.5 halves the clock, keeping the
    // slowed lane on the other lanes' shared time grid): that
    // *manufactures* cross-lane f64 end-time ties between causally
    // independent events — the adversarial case for the merge, which
    // must reconstruct the whole run's same-instant order purely from
    // the shard-invariant `(wave, lane)` span labels (DESIGN §12).
    let faults = [
        TimedFault {
            at: 2e-4,
            fault: Fault::ComputeJitter {
                gpu: 1,
                factor: 0.5,
            },
        },
        TimedFault {
            at: 3e-4,
            fault: Fault::CapacitySqueeze {
                gpu: 2,
                factor: 0.7,
            },
        },
    ];
    for scheme in [SchemeKind::BaselineDp, SchemeKind::HarmonyDp] {
        for armed in [false, true] {
            let case = ExecDiffCase {
                scheme,
                model: &model,
                topo: &topo,
                workload: &w,
                faults: if armed { &faults } else { &[] },
                prefetch: false,
                iterations: 2,
                resilience: armed.then_some(0xD5),
            };
            let (mut ref_summary, ref_trace, _) =
                run_mode(&case, false).expect("unsharded reference must run");
            ref_summary.elapsed_secs = 0.0;
            ref_summary.setup_secs = 0.0;
            ref_summary.mem_counters = None;
            let (ref_tj, ref_sj) = (ref_trace.to_json(), ref_summary.to_json());
            for shards in SHARD_COUNTS {
                for workers in [1usize, 2, 8] {
                    let (mut s, t, rep) = with_workers(workers, || run_sharded_mode(&case, shards))
                        .unwrap_or_else(|e| {
                            panic!("{} x{shards} w{workers} armed={armed}: {e}", scheme.name())
                        });
                    s.elapsed_secs = 0.0;
                    s.setup_secs = 0.0;
                    s.mem_counters = None;
                    assert!(rep.shards_used >= 1 && rep.shards_used <= 3);
                    assert_eq!(
                        t.to_json(),
                        ref_tj,
                        "{} x{shards} w{workers} armed={armed}: trace diverged",
                        scheme.name()
                    );
                    assert_eq!(
                        s.to_json(),
                        ref_sj,
                        "{} x{shards} w{workers} armed={armed}: summary diverged",
                        scheme.name()
                    );
                }
            }
        }
    }
}

#[test]
fn sharded_runs_match_unsharded_errors_on_infeasible_cases() {
    // A 256 KiB layer can never fit the 96 KiB atomized server: every
    // shard count must surface the same failure the unsharded run hits.
    let model = uniform_model(4, 65536);
    let topo = atomized_topo(3);
    let w = tight_workload(2);
    let case = ExecDiffCase {
        scheme: SchemeKind::HarmonyDp,
        model: &model,
        topo: &topo,
        workload: &w,
        faults: &[],
        prefetch: false,
        iterations: 1,
        resilience: None,
    };
    let whole = run_mode(&case, false).expect_err("case must be infeasible");
    for shards in SHARD_COUNTS {
        let sharded =
            run_sharded_mode(&case, shards).expect_err("sharded run must be infeasible too");
        assert_eq!(
            sharded.to_string(),
            whole.to_string(),
            "error text diverged at {shards} shards"
        );
    }
}

#[test]
fn tuner_sweep_is_identical_across_worker_counts() {
    let model = uniform_model(8, 4096);
    let topo = tight_topo(2);
    let base = WorkloadConfig {
        microbatches: 2,
        ubatch_size: 1,
        pack_size: 1,
        opt_slots: 0,
        group_size: None,
        recompute: false,
    };
    let sweep = || {
        tuner::tune(
            &model,
            &topo,
            &base,
            &[1, 2, 4],
            &[1, 2, 4],
            &[false, true],
            |m, w| plan_harmony_pp(m, 2, w).map_err(|e| e.to_string()),
        )
    };
    let sequential = with_workers(1, sweep);
    for w in WORKER_COUNTS {
        let parallel = with_workers(w, sweep);
        assert_eq!(parallel, sequential, "tuner sweep diverged at {w} workers");
    }
}
