//! Property-based memdiff: the rewritten SoA/ordered-index memory
//! manager must be byte-identical to the frozen dense core on (a)
//! randomized manager scripts — per-op results, victim order, candidate
//! order, errors, capacity/host accounting — and (b) full executor runs
//! over random models × schemes × workloads (trace + summary JSON).
//! A third property proves the script differential *detects* sabotage:
//! an armed index desync that removes a candidate must always be
//! flagged.

use harmony::simulate::SchemeKind;
use harmony_harness::workloads::{tight_topo, tight_workload, uniform_model};
use harmony_harness::{check_fast_vs_dense_memory, check_script, ExecDiffCase, MemScriptOp};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = MemScriptOp> {
    use MemScriptOp as O;
    prop_oneof![
        (1u64..3000).prop_map(O::RegisterHost),
        ((1u64..3000), (0usize..3)).prop_map(|(b, d)| O::AllocDevice(b, d)),
        ((0usize..40), (0usize..3)).prop_map(|(t, d)| O::SwapIn(t, d)),
        ((0usize..40), (0usize..3)).prop_map(|(t, d)| O::SwapInCancel(t, d)),
        (0usize..40).prop_map(O::SwapOut),
        ((0usize..40), (0usize..3)).prop_map(|(t, d)| O::P2p(t, d)),
        ((0usize..40), (0usize..3)).prop_map(|(t, d)| O::P2pCancel(t, d)),
        (0usize..40).prop_map(O::Pin),
        (0usize..40).prop_map(O::Unpin),
        (0usize..40).prop_map(O::Free),
        (0usize..40).prop_map(O::Touch),
        (0usize..40).prop_map(O::Drop),
        (0usize..40).prop_map(O::MarkDirty),
        ((0usize..40), prop::option::of(0u64..100)).prop_map(|(t, h)| O::SetNextUse(t, h)),
        ((0usize..3), (1u64..6000), any::<bool>()).prop_map(|(d, b, nu)| O::MakeRoom(d, b, nu)),
        ((0usize..40), (0usize..3), any::<bool>()).prop_map(|(t, d, nu)| O::PlanFetch(t, d, nu)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_scripts_replay_identically_on_both_cores(
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        if let Err(e) = check_script(&[8_000, 5_000, 2_500], &ops) {
            panic!("cores diverged: {e}");
        }
    }

    /// An index desync planted after a random prefix must always be
    /// flagged. The sabotage lands on a fourth device the prefix strategy
    /// never targets, so the appended alloc is guaranteed to succeed and
    /// leave exactly one evictable candidate for the desync to remove —
    /// the candidate-order digest must then diverge at the sabotage op
    /// itself (or at the planning probe right after).
    #[test]
    fn planted_index_desync_is_always_flagged(
        prefix in prop::collection::vec(op_strategy(), 1..40),
        need in 1u64..4000,
        next_use in any::<bool>(),
    ) {
        use MemScriptOp as O;
        let mut ops = prefix;
        ops.push(O::AllocDevice(100, 3));
        ops.push(O::Sabotage(3));
        ops.push(O::MakeRoom(3, need, next_use));
        let Err(e) = check_script(&[8_000, 5_000, 2_500, 2_000], &ops) else {
            panic!("sabotaged index went undetected");
        };
        prop_assert!(e.contains("diverges"), "unexpected message: {e}");
    }
}

proptest! {
    // Full executor runs are heavier; fewer cases keep the suite fast.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn full_runs_are_byte_identical_across_memory_cores(
        layers in 3usize..7,
        hidden_kb in 2u64..6,
        gpus in 1usize..3,
        m in 1usize..4,
        scheme_ix in 0usize..5,
        prefetch in any::<bool>(),
    ) {
        let model = uniform_model(layers, hidden_kb * 1024);
        let topo = tight_topo(gpus);
        let w = tight_workload(m);
        let scheme = SchemeKind::ALL[scheme_ix % SchemeKind::ALL.len()];
        let case = ExecDiffCase {
            scheme,
            model: &model,
            topo: &topo,
            workload: &w,
            faults: &[],
            prefetch,
            iterations: 2,
            resilience: None,
        };
        if let Err(e) = check_fast_vs_dense_memory(&case) {
            panic!("{}: {e}", scheme.name());
        }
    }
}
