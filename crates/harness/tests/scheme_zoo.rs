//! Scheme-zoo lifetime properties (DESIGN §15): the two tensor-lifetime
//! invariants the 1F1B weight-stashing and recompute knobs introduce.
//!
//! 1. **Stash window**: under 1F1B weight stashing, a stashed weight
//!    version `WeightStash{layer, ubatch}` lives exactly its
//!    microbatch's in-flight forward→backward window — written only by
//!    that microbatch's forward over the pack containing the layer, read
//!    only by the matching backward, never accessed after the backward
//!    frees it. The [`StashWindowOracle`] checks every task start
//!    against the plan's own read/write sets.
//! 2. **No stash fetch under recompute**: with `recompute = true` no
//!    `Stash`-class tensor exists at all — so none is ever registered,
//!    allocated, or fetched back from the host
//!    ([`RecomputeFetchOracle`]).
//!
//! Both properties are proptested over random grids with every oracle
//! armed, and both oracles are mutation-tested: a hand-fed violation
//! must panic with the oracle's signature message.

use std::collections::HashSet;

use harmony::simulate::{self, SchemeKind};
use harmony_harness::workloads::{slack_topo, tight_workload, uniform_model};
use harmony_harness::StashWindowOracle;
use harmony_harness::{check_stash_access, instrument_memory, run_instrumented, OracleConfig};
use harmony_memory::{MemoryManager, TensorClass};
use harmony_sched::{ExecContext, ExecEvent, ExecObserver, WorkloadConfig};
use harmony_simulator::Simulator;
use harmony_taskgraph::{TaskKind, TensorRef};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// 1F1B weight-stashed runs complete with the stash-window oracle
    /// (and every other oracle) armed, across GPU counts, microbatch
    /// counts, and pack sizes: no stashed weight version is ever read
    /// outside — or after — its microbatch's in-flight window.
    #[test]
    fn stashed_weight_versions_live_exactly_their_window(
        gpus in 1usize..5,
        microbatches in 1usize..7,
        pack_size in 1usize..3,
        layers in 4usize..9,
    ) {
        let model = uniform_model(layers, 4096);
        let topo = slack_topo(gpus);
        let w = WorkloadConfig { pack_size, ..tight_workload(microbatches) };
        run_instrumented(
            SchemeKind::Pipe1F1B,
            &model,
            &topo,
            &w,
            &OracleConfig::all(),
            &[],
            None,
            None,
        )
        .unwrap_or_else(|e| {
            panic!("pipe-1f1b N={gpus} m={microbatches} pack={pack_size} L={layers}: {e}")
        });
    }

    /// Recompute runs complete on every scheme with the no-stash-fetch
    /// oracle armed: recomputation really does eliminate the per-layer
    /// stash, so no recomputed activation is ever fetched from the host.
    #[test]
    fn recompute_never_fetches_a_stash_from_host(
        scheme_ix in 0usize..5,
        gpus in 1usize..4,
        microbatches in 1usize..5,
        pack_size in 1usize..3,
    ) {
        let scheme = SchemeKind::ALL[scheme_ix % SchemeKind::ALL.len()];
        let model = uniform_model(6, 4096);
        let topo = slack_topo(gpus);
        let w = WorkloadConfig {
            recompute: true,
            pack_size,
            ..tight_workload(microbatches)
        };
        let oracles = OracleConfig {
            recompute_no_stash_fetch: true,
            ..OracleConfig::all()
        };
        run_instrumented(scheme, &model, &topo, &w, &oracles, &[], None, None)
            .unwrap_or_else(|e| {
                panic!(
                    "{} N={gpus} m={microbatches} pack={pack_size} recompute: {e}",
                    scheme.name()
                )
            });
    }
}

/// Builds a real 1F1B weight-stashing plan plus the executor context
/// pieces needed to hand-feed events to the stash-window oracle.
fn pipe_fixture() -> (
    harmony_sched::ExecutionPlan,
    Simulator,
    MemoryManager,
    HashSet<(u32, usize, harmony_taskgraph::TaskId)>,
) {
    let model = uniform_model(6, 4096);
    let topo = slack_topo(2);
    let plan = simulate::plan(SchemeKind::Pipe1F1B, &model, &topo, &tight_workload(2))
        .expect("pipe-1f1b plan builds");
    let sim = Simulator::new(&topo);
    let mm = MemoryManager::new(vec![topo.gpu(0).unwrap().mem_bytes]);
    (plan, sim, mm, HashSet::new())
}

/// The backward task of the fixture plan that reads a stashed weight
/// version, plus one of the versions it reads.
fn stash_reading_backward(
    plan: &harmony_sched::ExecutionPlan,
) -> (harmony_taskgraph::TaskId, usize, usize) {
    for id in plan.graph.topo_order() {
        let t = plan.graph.task(id);
        if matches!(t.kind, TaskKind::Backward { .. }) {
            for r in &t.reads {
                if let TensorRef::WeightStash { layer, ubatch } = *r {
                    return (id, layer, ubatch);
                }
            }
        }
    }
    panic!("1F1B plan must contain a backward reading a stashed weight version");
}

/// Mutation: a backward re-reads a stashed weight version after its own
/// window already closed (the stash was freed by the first backward
/// completion). This is the stale-read the oracle exists for.
#[test]
#[should_panic(expected = "after its window closed")]
fn stale_stash_read_after_window_close_is_caught() {
    let (plan, sim, mm, done) = pipe_fixture();
    let (task, _, _) = stash_reading_backward(&plan);
    let ctx = ExecContext {
        plan: &plan,
        mm: &mm,
        sim: &sim,
        done: &done,
    };
    let mut oracle = StashWindowOracle::default();
    // Legal first pass: the backward starts and finishes, freeing its
    // stashed versions and closing the window.
    let started = ExecEvent::TaskStarted {
        gpu: 0,
        iter: 0,
        replica: 0,
        task,
    };
    oracle.on_event(&ctx, &started);
    oracle.on_event(
        &ctx,
        &ExecEvent::TaskFinished {
            gpu: 0,
            iter: 0,
            replica: 0,
            task,
        },
    );
    // Bug: the same backward (same iter/replica) starts again and reads
    // the freed stash.
    oracle.on_event(&ctx, &started);
}

/// Mutations against the access rule itself: every illegal reader/writer
/// combination panics, the two legal ones don't.
#[test]
fn stash_access_rule_rejects_cross_window_accesses() {
    let packs = [0..3usize, 3..6];
    // Legal: microbatch 1's forward writes, its backward reads.
    check_stash_access(TaskKind::Forward { pack: 0, ubatch: 1 }, 2, 1, true, &packs);
    check_stash_access(
        TaskKind::Backward { pack: 1, ubatch: 0 },
        4,
        0,
        false,
        &packs,
    );
    let illegal: [(TaskKind, usize, usize, bool); 4] = [
        // Another microbatch's backward reads microbatch 1's version.
        (TaskKind::Backward { pack: 0, ubatch: 0 }, 2, 1, false),
        // A backward reads a version stashed for a different pack's layer.
        (TaskKind::Backward { pack: 0, ubatch: 1 }, 4, 1, false),
        // A backward *writes* a stash (only forwards stash).
        (TaskKind::Backward { pack: 0, ubatch: 1 }, 2, 1, true),
        // The update reads a stashed version instead of the live weights.
        (TaskKind::Update { pack: 0 }, 2, 1, false),
    ];
    for (kind, layer, ubatch, write) in illegal {
        let err = std::panic::catch_unwind(|| {
            check_stash_access(kind, layer, ubatch, write, &packs);
        })
        .expect_err(&format!(
            "{kind:?} layer={layer} ubatch={ubatch} write={write} must panic"
        ));
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()).unwrap());
        assert!(
            msg.contains("stash-window oracle"),
            "panic must carry the oracle signature, got: {msg}"
        );
    }
}

/// Mutation: a per-layer stash materializes while recomputation is
/// armed — the recompute oracle must refuse it at registration.
#[test]
#[should_panic(expected = "recompute oracle")]
fn materialized_stash_under_recompute_is_caught() {
    let mut mm = MemoryManager::new(vec![1 << 20]);
    instrument_memory(
        &mut mm,
        &OracleConfig {
            recompute_no_stash_fetch: true,
            ..OracleConfig::all()
        },
    );
    mm.register_on_host("L0.SX.u0", 4096, TensorClass::Stash);
}

/// Mutation: a stash-class tensor is fetched back from the host while
/// recomputation is armed — caught at `BeginSwapIn`, and the oracle is
/// inert for other classes (a weight fetch passes).
#[test]
fn stash_swap_in_under_recompute_is_caught() {
    let fetch = |class: TensorClass| {
        let mut mm = MemoryManager::new(vec![1 << 20]);
        let id = mm.register_on_host("t0", 4096, class);
        instrument_memory(
            &mut mm,
            &OracleConfig {
                recompute_no_stash_fetch: true,
                // The residency/capacity oracles are irrelevant here and
                // the bare fixture would trip them on purpose-built
                // violations only; keep the test focused.
                ..OracleConfig::none()
            },
        );
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            mm.begin_swap_in(id, 0).unwrap();
        }))
    };
    assert!(
        fetch(TensorClass::Weight).is_ok(),
        "weight fetches stay legal"
    );
    let err = fetch(TensorClass::Stash).expect_err("stash fetch must panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("recompute oracle"),
        "panic must carry the oracle signature, got: {msg}"
    );
}

/// Control: the armed oracle pair stays silent on a clean 1F1B run and a
/// clean recompute run — the proptests above cover the grid; this pins
/// the two canonical cells deterministically.
#[test]
fn clean_runs_pass_with_lifetime_oracles_armed() {
    let model = uniform_model(6, 4096);
    let topo = slack_topo(2);
    run_instrumented(
        SchemeKind::Pipe1F1B,
        &model,
        &topo,
        &tight_workload(4),
        &OracleConfig::all(),
        &[],
        None,
        None,
    )
    .expect("clean 1F1B run");
    let w = WorkloadConfig {
        recompute: true,
        ..tight_workload(4)
    };
    let oracles = OracleConfig {
        recompute_no_stash_fetch: true,
        ..OracleConfig::all()
    };
    run_instrumented(
        SchemeKind::HarmonyPp,
        &model,
        &topo,
        &w,
        &oracles,
        &[],
        None,
        None,
    )
    .expect("clean recompute run");
}
