//! Property-based differential check of the network core: random
//! interleaved submit / complete / `set_channel_bandwidth` scripts must
//! drive the indexed fast engine and the dense full-rescan reference to
//! **bitwise-identical** completion traces (time bit patterns, kinds,
//! tags) and channel statistics. Failures shrink to the smallest
//! divergent script, which names the offending op by tag.

use harmony_harness::simdiff::{check_fast_vs_dense, diff_topology, run_script, SimOp};
use harmony_simulator::Simulator;
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = SimOp> {
    prop_oneof![
        ((0usize..3), 1u16..50).prop_map(|(gpu, millis)| SimOp::Compute { gpu, millis }),
        ((0usize..3), 1u16..64).prop_map(|(gpu, mb)| SimOp::ToHost { gpu, mb }),
        ((0usize..3), 1u16..64).prop_map(|(gpu, mb)| SimOp::FromHost { gpu, mb }),
        ((0usize..3), (0usize..3), 1u16..64).prop_map(|(src, dst, mb)| SimOp::P2p { src, dst, mb }),
        (0usize..6).prop_map(|n| SimOp::Drain { n }),
        ((0usize..16), 1u16..40).prop_map(|(channel, tenths_gbps)| SimOp::SetBandwidth {
            channel,
            tenths_gbps
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// The differential property itself: any script agrees bitwise.
    #[test]
    fn fast_and_dense_traces_are_bitwise_identical(
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        if let Err(divergence) = check_fast_vs_dense(&ops) {
            panic!("engines diverged: {divergence}\nscript: {ops:#?}");
        }
    }

    /// Replaying the same script twice through the fast engine is
    /// bit-reproducible (determinism is unchanged by the indexing).
    #[test]
    fn fast_engine_is_deterministic_per_script(
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let topo = diff_topology();
        let a = run_script(&mut Simulator::new(&topo), &topo, &ops);
        let b = run_script(&mut Simulator::new(&topo), &topo, &ops);
        prop_assert_eq!(a, b);
    }
}

/// Mid-flight `set_channel_bandwidth` on a contended uplink — the exact
/// scenario where a stale cached rate or a missed invalidation would
/// surface as a trace divergence.
#[test]
fn bandwidth_change_mid_flight_agrees_with_dense() {
    let ops = vec![
        SimOp::ToHost { gpu: 0, mb: 40 },
        SimOp::ToHost { gpu: 1, mb: 40 },
        SimOp::ToHost { gpu: 2, mb: 40 },
        SimOp::Drain { n: 1 },
        SimOp::SetBandwidth {
            channel: 0,
            tenths_gbps: 3,
        },
        SimOp::FromHost { gpu: 1, mb: 20 },
        SimOp::SetBandwidth {
            channel: 1,
            tenths_gbps: 25,
        },
    ];
    check_fast_vs_dense(&ops).expect("mid-flight bandwidth change must not diverge");
}
