//! Mutation tests: each oracle must actually *catch* the class of bug it
//! exists for. Every test here drives a deliberately broken runtime —
//! computing on a tensor that was never swapped in, skipping the
//! end-of-run dirty flush, starting a task before its dependency — and
//! asserts the oracle panics with its signature message. An oracle that
//! silently accepts its target mutation is dead weight; these tests keep
//! the harness honest.

use std::collections::HashSet;

use harmony::simulate::{self, SchemeKind};
use harmony_harness::oracles::{DependencyOracle, FlushOracle, ResidencyUseOracle};
use harmony_harness::workloads::{tight_topo, tight_workload, uniform_model};
use harmony_harness::{instrument_memory, OracleConfig};
use harmony_memory::{MemoryManager, TensorClass};
use harmony_sched::{ExecContext, ExecEvent, ExecObserver};
use harmony_simulator::Simulator;

/// Mutation: the runtime "computes" on a host-resident tensor instead of
/// swapping it in first. The memory manager itself is permissive about
/// `touch` — the residency-use oracle is the only thing standing between
/// this bug and silently wrong results.
#[test]
#[should_panic(expected = "residency oracle")]
fn use_without_swap_in_is_caught() {
    let mut mm = MemoryManager::new(vec![1 << 20]);
    instrument_memory(&mut mm, &OracleConfig::all());
    let id = mm.register_on_host("w0", 4096, TensorClass::Weight);
    // Bug: no begin_swap_in/finish_move_to_device before use.
    mm.touch(id).unwrap();
}

/// Builds a real plan + simulator + memory manager for hand-feeding
/// executor events to the executor-side oracles.
fn exec_fixture() -> (
    harmony_sched::ExecutionPlan,
    Simulator,
    MemoryManager,
    HashSet<(u32, usize, harmony_taskgraph::TaskId)>,
) {
    let model = uniform_model(4, 4096);
    let topo = tight_topo(1);
    let plan = simulate::plan(SchemeKind::HarmonyDp, &model, &topo, &tight_workload(2))
        .expect("plan builds");
    let sim = Simulator::new(&topo);
    let mm = MemoryManager::new(vec![topo.gpu(0).unwrap().mem_bytes]);
    (plan, sim, mm, HashSet::new())
}

/// Mutation: the executor finishes a run without flushing dirty state —
/// exactly the `flush_dirty_state` skip named in the conformance spec.
/// The flush oracle inspects the post-run memory image and panics.
#[test]
#[should_panic(expected = "flush oracle")]
fn skipped_flush_is_caught() {
    let (plan, sim, mut mm, done) = exec_fixture();
    let id = mm
        .alloc_on_device("w0", 4096, TensorClass::Weight, 0)
        .expect("fits");
    mm.mark_dirty(id).expect("dirty");
    // Bug: RunFinished with a dirty device-resident tensor still in place.
    let ctx = ExecContext {
        plan: &plan,
        mm: &mm,
        sim: &sim,
        done: &done,
    };
    FlushOracle.on_event(&ctx, &ExecEvent::RunFinished);
}

/// Mutation: a task is submitted before its graph dependency completed
/// (e.g. a backward launched before its forward's stash exists).
#[test]
#[should_panic(expected = "dependency oracle")]
fn dependency_violation_is_caught() {
    let (plan, sim, mm, done) = exec_fixture();
    // Find a task that has at least one dependency.
    let task = plan
        .graph
        .topo_order()
        .into_iter()
        .find(|&t| !plan.graph.task(t).deps.is_empty())
        .expect("graph has dependent tasks");
    let ctx = ExecContext {
        plan: &plan,
        mm: &mm,
        sim: &sim,
        done: &done, // empty: nothing has finished, so any dep is unmet
    };
    DependencyOracle.on_event(
        &ctx,
        &ExecEvent::TaskStarted {
            gpu: 0,
            iter: 0,
            replica: 0,
            task,
        },
    );
}

/// Control: the same harness on a *correct* runtime stays silent — the
/// full conformance run in `conformance_matrix.rs` plus this sanity check
/// that a clean fixture does not trip the hand-fed oracles.
#[test]
fn clean_fixture_passes_hand_fed_oracles() {
    let (plan, sim, mm, done) = exec_fixture();
    let ctx = ExecContext {
        plan: &plan,
        mm: &mm,
        sim: &sim,
        done: &done,
    };
    FlushOracle.on_event(&ctx, &ExecEvent::RunFinished);
    let mut residency = ResidencyUseOracle;
    let _ = &mut residency; // attached oracles exercised in the proptests
}
