//! Cross-crate end-to-end tests: model spec → task graph → plan →
//! simulator, and the analytical model against the simulated runs.

use harmony::prelude::analytical;
use harmony::prelude::*;
use harmony::simulate::{self, SchemeKind};

fn small_topo(n: usize, mem: u64) -> Topology {
    presets::commodity_server(presets::CommodityParams {
        num_gpus: n,
        gpus_per_switch: n.max(1),
        pcie_bw: presets::GBPS,
        host_uplink_bw: presets::GBPS,
        gpu_mem: mem,
        gpu_flops: 1e9,
    })
    .expect("valid")
}

fn workload(m: usize) -> WorkloadConfig {
    WorkloadConfig {
        microbatches: m,
        ubatch_size: 2,
        pack_size: 1,
        opt_slots: 2,
        group_size: None,
        recompute: false,
    }
}

#[test]
fn transformer_spec_flows_through_every_scheme() {
    let model = TransformerConfig::tiny().build();
    let topo = small_topo(2, 8 * 1024 * 1024);
    for scheme in SchemeKind::ALL {
        let (summary, trace) = simulate::run(scheme, &model, &topo, &workload(2))
            .unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
        assert!(summary.sim_secs > 0.0);
        assert_eq!(summary.samples, 2 * 2 * 2);
        assert!(trace.duration() > 0.0);
        // Every GPU computed something.
        for g in 0..2 {
            assert!(
                trace.busy_secs(g, SpanKind::Compute) > 0.0,
                "{}: gpu{g} idle",
                scheme.name()
            );
        }
    }
}

#[test]
fn simulated_ordering_matches_analytical_ordering() {
    // On a pressured uniform workload the four schemes' *relative* swap
    // volumes must match the closed-form model's ordering.
    let model = ModelSpec {
        name: "uniform".to_string(),
        layers: (0..6)
            .map(|i| LayerSpec {
                name: format!("L{i}"),
                class: LayerClass::Other,
                params: 4096,
                fwd_flops_per_sample: 8192,
                out_elems_per_sample: 64,
                extra_stash_elems_per_sample: 128,
                in_elems_per_sample: 64,
            })
            .collect(),
        seq_len: 1,
    };
    let topo = small_topo(4, 96 * 1024);
    let w = WorkloadConfig {
        ubatch_size: 1,
        ..workload(2)
    };
    let p = analytical::Params::from_model(&model, w.ubatch_size, w.opt_slots, 2, 4);
    let mut sim_order = Vec::new();
    let mut ana_order = Vec::new();
    for scheme in SchemeKind::ALL {
        let (s, _) = simulate::run(scheme, &model, &topo, &w).expect("run");
        sim_order.push((s.global_swap(), scheme.name()));
        ana_order.push((
            analytical::breakdown(scheme.analytical(), &p).total(),
            scheme.name(),
        ));
    }
    // The paper's claims: Harmony beats its own baseline within each
    // parallelism family, Harmony-PP dominates everything, baseline DP is
    // the worst. (Cross-family ordering of the middle two is
    // regime-dependent, so it is not asserted.)
    for order in [&sim_order, &ana_order] {
        let vol = |name: &str| order.iter().find(|x| x.1 == name).expect("present").0;
        assert!(vol("harmony-dp") < vol("baseline-dp"));
        assert!(vol("harmony-pp") < vol("baseline-pp"));
        assert!(vol("harmony-pp") <= vol("harmony-dp"));
        assert_eq!(
            order.iter().max_by_key(|x| x.0).expect("4 schemes").1,
            "baseline-dp"
        );
        assert_eq!(
            order.iter().min_by_key(|x| x.0).expect("4 schemes").1,
            "harmony-pp"
        );
    }
}

#[test]
fn traces_export_and_reimport() {
    let model = TransformerConfig::tiny().build();
    let topo = small_topo(2, 8 * 1024 * 1024);
    let (_, trace) =
        simulate::run(SchemeKind::HarmonyPp, &model, &topo, &workload(1)).expect("run");
    let json = trace.to_json();
    let back = Trace::from_json(&json).expect("roundtrip");
    assert_eq!(back.spans.len(), trace.spans.len());
    // Float formatting may differ in the final ulp; structure must hold.
    assert!((back.duration() - trace.duration()).abs() < 1e-12);
}

#[test]
fn gantt_renders_for_all_schemes() {
    let model = TransformerConfig::tiny().build();
    let topo = small_topo(2, 8 * 1024 * 1024);
    for scheme in SchemeKind::ALL {
        let (_, trace) = simulate::run(scheme, &model, &topo, &workload(1)).expect("run");
        let g = gantt::render(&trace, 80);
        assert!(g.contains("gpu0 |"));
        assert!(g.contains("gpu1 |"));
    }
}

#[test]
fn group_size_trades_swap_for_overlap() {
    // The §4 tango at integration scale: growing the Harmony-PP group must
    // monotonically reduce weight swap volume.
    let model = TransformerConfig::tiny().build();
    let topo = small_topo(2, 256 * 1024);
    let mut last = u64::MAX;
    for g in [1usize, 2, 4] {
        let w = WorkloadConfig {
            group_size: Some(g),
            ..workload(2)
        };
        let (s, _) = simulate::run(SchemeKind::HarmonyPp, &model, &topo, &w).expect("run");
        let weight = s.swap_by_class["weight"];
        assert!(
            weight <= last,
            "group {g}: weight swap {weight} grew from {last}"
        );
        last = weight;
    }
}

#[test]
fn dgx_like_p2p_reduces_pipeline_handoff_latency() {
    // Ablation: the same Harmony-PP plan on a p2p-rich interconnect must
    // not be slower than on the PCIe-only box (same capacities).
    let model = TransformerConfig::tiny().build();
    let w = workload(2);
    let pcie = small_topo(2, 8 * 1024 * 1024);
    let (s_pcie, _) = simulate::run(SchemeKind::HarmonyPp, &model, &pcie, &w).expect("run");
    // An identical box with 10× faster p2p channels.
    let mut b = harmony_topology::TopologyBuilder::new("fast-p2p");
    for g in 0..2 {
        b.gpu(
            harmony_topology::GpuSpec {
                mem_bytes: 8 * 1024 * 1024,
                flops: 1e9,
            },
            0,
        );
        let _ = g;
    }
    let g0u = b.channel("gpu0->sw", 1e9);
    let g0d = b.channel("sw->gpu0", 1e9);
    let g1u = b.channel("gpu1->sw", 1e9);
    let g1d = b.channel("sw->gpu1", 1e9);
    let swu = b.channel("sw->host", 1e9);
    let swd = b.channel("host->sw", 1e9);
    use harmony_topology::Endpoint;
    b.route(Endpoint::Gpu(0), Endpoint::Host, vec![g0u, swu]);
    b.route(Endpoint::Host, Endpoint::Gpu(0), vec![swd, g0d]);
    b.route(Endpoint::Gpu(1), Endpoint::Host, vec![g1u, swu]);
    b.route(Endpoint::Host, Endpoint::Gpu(1), vec![swd, g1d]);
    let nv01 = b.channel("nv0->1", 1e10);
    let nv10 = b.channel("nv1->0", 1e10);
    b.route(Endpoint::Gpu(0), Endpoint::Gpu(1), vec![nv01]);
    b.route(Endpoint::Gpu(1), Endpoint::Gpu(0), vec![nv10]);
    let fast = b.build().expect("valid");
    let (s_fast, _) = simulate::run(SchemeKind::HarmonyPp, &model, &fast, &w).expect("run");
    assert!(
        s_fast.sim_secs <= s_pcie.sim_secs * 1.001,
        "fast p2p {:.4}s vs pcie {:.4}s",
        s_fast.sim_secs,
        s_pcie.sim_secs
    );
}

#[test]
fn harmony_extends_to_two_server_deployments() {
    // §4 "Multi-machine training": the same planners and executor run on a
    // hierarchical two-server topology; stage handoffs that cross the
    // inter-server NIC simply ride slower channels.
    let model = TransformerConfig::tiny().build();
    let topo = harmony_topology::presets::two_server(harmony_topology::presets::TwoServerParams {
        gpus_per_server: 2,
        pcie_bw: presets::GBPS,
        host_uplink_bw: presets::GBPS,
        nic_bw: presets::GBPS / 8.0,
        gpu_mem: 8 * 1024 * 1024,
        gpu_flops: 1e9,
    })
    .expect("valid");
    let w = workload(1);
    let (s, trace) = simulate::run(SchemeKind::HarmonyPp, &model, &topo, &w).expect("run");
    assert!(s.sim_secs > 0.0);
    assert!(s.p2p_bytes > 0, "stage handoffs cross GPUs (and the NIC)");
    for g in 0..4 {
        assert!(trace.busy_secs(g, SpanKind::Compute) > 0.0, "gpu{g} idle");
    }
}

#[test]
fn ample_aggregate_memory_makes_swapping_irrelevant() {
    // §4: "If the aggregate memory across all GPUs is large enough to
    // accommodate the memory footprint of large models, swapping becomes
    // irrelevant and pipeline parallel training becomes an attractive
    // solution." With huge per-GPU memory, Harmony-PP's only host traffic
    // is the cold start-in and final checkpoint-out of model state.
    let model = TransformerConfig::tiny().build();
    let big = presets::commodity_server(presets::CommodityParams {
        num_gpus: 2,
        gpus_per_switch: 2,
        pcie_bw: presets::GBPS,
        host_uplink_bw: presets::GBPS,
        gpu_mem: 1 << 30,
        gpu_flops: 1e9,
    })
    .expect("valid");
    let (s, _) = simulate::run(SchemeKind::HarmonyPp, &model, &big, &workload(2)).expect("run");
    let state = 4 * model.total_weight_bytes(); // W + dW + 2K
    let inputs = 4 * 2 * model.layers[0].in_bytes(2);
    assert!(
        s.global_swap() <= 2 * state + inputs,
        "swap {} exceeds cold-start+flush bound {}",
        s.global_swap(),
        2 * state + inputs
    );
}

#[test]
fn cnn_models_schedule_like_transformers() {
    // The decomposer/scheduler are model-agnostic: AlexNet's conv-heavy
    // head + FC-heavy tail (the opposite shape from a transformer) flows
    // through every scheme on a memory-tight box.
    let model = harmony_models::cnn::alexnet();
    let topo = small_topo(2, 700 * 1024 * 1024); // fits fc6's 604 MB Adam update set, not the ~1 GB total state
    let w = WorkloadConfig {
        microbatches: 2,
        ubatch_size: 4,
        pack_size: 1,
        opt_slots: 2,
        group_size: None,
        recompute: false,
    };
    for scheme in SchemeKind::ALL {
        let (s, _) = simulate::run(scheme, &model, &topo, &w)
            .unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
        assert!(s.global_swap() > 0, "{} must swap", scheme.name());
    }
    // Harmony-DP still beats baseline DP on this very different layer mix.
    let (b, _) = simulate::run(SchemeKind::BaselineDp, &model, &topo, &w).expect("run");
    let (h, _) = simulate::run(SchemeKind::HarmonyDp, &model, &topo, &w).expect("run");
    assert!(h.global_swap() < b.global_swap());
}
