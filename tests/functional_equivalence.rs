//! The single-virtual-device illusion, verified with real floats: the
//! Harmony functional runtime must be *bit-identical* to the user's
//! sequential gradient-accumulation program for every model shape, device
//! count, microbatch count, and memory pressure level.

use harmony::prelude::*;

fn loss_curve_and_params(
    model: &ExecModel,
    devices: Vec<u64>,
    microbatches: usize,
    steps: u64,
    make_batch: &mut dyn FnMut(u64) -> (Tensor, Vec<usize>),
) -> (Vec<f32>, Vec<Vec<Tensor>>) {
    let opt = Optimizer::adam(0.01);
    let mut session = FunctionalSession::new(
        model.clone(),
        SessionConfig {
            device_capacities: devices,
            microbatches,
            optimizer: opt,
            seed: 77,
        },
    )
    .expect("session");
    let mut losses = Vec::new();
    for step in 1..=steps {
        let (x, t) = make_batch(step);
        losses.push(session.train_step(&x, &t).expect("step").loss);
    }
    (losses, session.params().expect("params"))
}

fn reference_curve(
    model: &ExecModel,
    microbatches: usize,
    steps: u64,
    make_batch: &mut dyn FnMut(u64) -> (Tensor, Vec<usize>),
) -> (Vec<f32>, Vec<Vec<Tensor>>) {
    let opt = Optimizer::adam(0.01);
    let mut params = model.init_params(77);
    let mut state = model.init_opt_state(&params, &opt);
    let mut losses = Vec::new();
    for step in 1..=steps {
        let (x, t) = make_batch(step);
        losses.push(
            model
                .train_step_accum(&mut params, &opt, &mut state, &x, &t, microbatches, step)
                .expect("step"),
        );
    }
    (losses, params)
}

fn batch_maker(
    seed: u64,
    rows: usize,
    dim: usize,
    classes: usize,
) -> impl FnMut(u64) -> (Tensor, Vec<usize>) {
    let mut rng = SplitMix64::new(seed);
    move |_| {
        let x = Tensor::randn([rows, dim], 1.0, &mut rng);
        let t = (0..rows).map(|i| i % classes).collect();
        (x, t)
    }
}

fn token_batch_maker(
    seed: u64,
    rows: usize,
    seq: usize,
    vocab: usize,
) -> impl FnMut(u64) -> (Tensor, Vec<usize>) {
    let mut rng = SplitMix64::new(seed);
    move |_| {
        let ids: Vec<f32> = (0..rows * seq)
            .map(|_| rng.next_bounded(vocab) as f32)
            .collect();
        let x = Tensor::from_vec([rows, seq], ids.clone()).expect("shape");
        let t = ids.iter().map(|&v| v as usize).collect();
        (x, t)
    }
}

#[test]
fn mlp_bitwise_identical_across_device_counts() {
    let model = mlp(&[12, 24, 24, 4]);
    for n_devices in [1usize, 2, 3] {
        let mut mk = batch_maker(1, 8, 12, 4);
        let (hl, hp) = loss_curve_and_params(&model, vec![1 << 20; n_devices], 2, 6, &mut mk);
        let mut mk = batch_maker(1, 8, 12, 4);
        let (rl, rp) = reference_curve(&model, 2, 6, &mut mk);
        assert_eq!(hl, rl, "losses diverge at {n_devices} devices");
        assert_eq!(hp, rp, "params diverge at {n_devices} devices");
    }
}

#[test]
fn mlp_bitwise_identical_across_microbatch_counts() {
    let model = mlp(&[12, 24, 4]);
    for m in [1usize, 2, 4, 8] {
        let mut mk = batch_maker(2, 8, 12, 4);
        let (hl, hp) = loss_curve_and_params(&model, vec![1 << 20], m, 4, &mut mk);
        let mut mk = batch_maker(2, 8, 12, 4);
        let (rl, rp) = reference_curve(&model, m, 4, &mut mk);
        assert_eq!(hl, rl, "losses diverge at m = {m}");
        assert_eq!(hp, rp, "params diverge at m = {m}");
    }
}

#[test]
fn memory_pressure_never_changes_results() {
    // The core guarantee of memory virtualization: capacity changes
    // performance, never semantics.
    let model = mlp(&[24, 48, 48, 4]);
    let mut reference: Option<(Vec<f32>, Vec<Vec<Tensor>>)> = None;
    for capacity in [16 * 1024 * 1024u64, 128 * 1024, 48 * 1024] {
        let mut mk = batch_maker(3, 8, 24, 4);
        let got = loss_curve_and_params(&model, vec![capacity], 2, 5, &mut mk);
        match &reference {
            None => reference = Some(got),
            Some(r) => {
                assert_eq!(r.0, got.0, "capacity {capacity}: losses diverge");
                assert_eq!(r.1, got.1, "capacity {capacity}: params diverge");
            }
        }
    }
}

#[test]
fn transformer_bitwise_identical_with_residuals_and_attention() {
    for causal in [false, true] {
        let model = tiny_transformer(13, 8, 2, 2, causal).expect("model");
        let mut mk = token_batch_maker(4, 4, 6, 13);
        let (hl, hp) = loss_curve_and_params(&model, vec![1 << 20; 2], 2, 4, &mut mk);
        let mut mk = token_batch_maker(4, 4, 6, 13);
        let (rl, rp) = reference_curve(&model, 2, 4, &mut mk);
        assert_eq!(hl, rl, "causal={causal}: losses diverge");
        assert_eq!(hp, rp, "causal={causal}: params diverge");
    }
}

#[test]
fn pressured_transformer_still_learns_copy_task() {
    let model = tiny_transformer(17, 8, 2, 1, false).expect("model");
    // Training state ≈ params × 16 bytes; squeeze into a third of that.
    let state = (model.param_count() * 16) as u64;
    let mut session = FunctionalSession::new(
        model,
        SessionConfig {
            device_capacities: vec![state / 3],
            microbatches: 2,
            optimizer: Optimizer::adam(0.01),
            seed: 5,
        },
    )
    .expect("session");
    let mut mk = token_batch_maker(6, 4, 6, 17);
    let mut first = None;
    let mut last = f32::INFINITY;
    let mut total_swapped = 0u64;
    for step in 1..=50 {
        let (x, t) = mk(step);
        let r = session.train_step(&x, &t).expect("step");
        if first.is_none() {
            first = Some(r.loss);
        }
        last = r.loss;
        total_swapped += r.swap_in_bytes + r.swap_out_bytes;
    }
    assert!(total_swapped > 0, "must be swapping under pressure");
    assert!(
        last < first.expect("ran") * 0.6,
        "loss did not fall: {first:?} -> {last}"
    );
}

#[test]
fn lenet_trains_bitwise_identically_under_pressure() {
    // A real convolutional network (conv/pool/flatten) through the same
    // machinery: bit-identical to the reference and learning on a synthetic
    // "bright quadrant" task, on a device smaller than its training state.
    let model = harmony::prelude::ExecModel::clone(&lenet());
    let state = (model.param_count() * 16) as u64;
    let mut session = FunctionalSession::new(
        model.clone(),
        SessionConfig {
            device_capacities: vec![(state / 2).max(24 * 1024)],
            microbatches: 2,
            optimizer: Optimizer::adam(0.01),
            seed: 31,
        },
    )
    .expect("session");
    let opt = Optimizer::adam(0.01);
    let mut ref_params = model.init_params(31);
    let mut ref_state = model.init_opt_state(&ref_params, &opt);

    let mut rng = SplitMix64::new(32);
    // Class = which quadrant of the 12×12 image is bright.
    let make_batch = |rng: &mut SplitMix64| {
        harmony_models::data::quadrant_images(rng, 8, 12).expect("valid batch")
    };

    let mut first = None;
    let mut last = 0.0f32;
    for step in 1..=25 {
        let (x, t) = make_batch(&mut rng);
        let ref_loss = model
            .train_step_accum(&mut ref_params, &opt, &mut ref_state, &x, &t, 2, step)
            .expect("ref step");
        let r = session.train_step(&x, &t).expect("harmony step");
        assert_eq!(r.loss, ref_loss, "step {step}");
        if first.is_none() {
            first = Some(r.loss);
        }
        last = r.loss;
    }
    assert_eq!(session.params().expect("params"), ref_params);
    assert!(
        last < first.expect("ran") * 0.5,
        "LeNet did not learn: {first:?} -> {last}"
    );
}

fn lenet() -> harmony::prelude::ExecModel {
    harmony_models::exec::lenet_exec().expect("valid lenet")
}
