//! Quickstart: train a transformer that does not fit in its "GPU".
//!
//! The user writes an ordinary sequential model; Harmony's functional
//! runtime decomposes each step into per-layer, per-microbatch tasks, runs
//! them layer-major (input-batch grouping) with just-in-time updates on
//! two capacity-limited virtual devices, and swaps tensors against host
//! memory whenever a device fills up. The loss goes down; the peak
//! resident memory never exceeds the device capacity; and the learned
//! parameters are bit-identical to running the same program sequentially.
//!
//! Run with: `cargo run --example quickstart`

use harmony::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small GPT-style model: vocab 32, hidden 16, 2 heads, 2 blocks.
    let model = tiny_transformer(32, 16, 2, 2, /* causal = */ true)?;
    let total_state = model.param_count() * 4 * 4; // W + dW + Adam (m, v)
    println!("model: {} ({} params)", model.name, model.param_count());
    println!("training state: {:.1} KiB", total_state as f64 / 1024.0);

    // Two virtual devices, each far smaller than the training state.
    let capacity = 64 * 1024u64;
    println!(
        "devices: 2 × {:.0} KiB (state is {:.1}× one device)\n",
        capacity as f64 / 1024.0,
        total_state as f64 / capacity as f64
    );
    let mut session = FunctionalSession::new(
        model,
        SessionConfig {
            device_capacities: vec![capacity; 2],
            microbatches: 4,
            optimizer: Optimizer::adam(3e-3),
            seed: 42,
        },
    )?;
    println!(
        "layer placement across devices: {:?}\n",
        session.placement()
    );

    // Task: learn to copy the input token sequence (identity LM).
    let mut rng = SplitMix64::new(7);
    println!("step   loss    swap-in KiB  swap-out KiB  p2p KiB  peak/dev KiB");
    for step in 1..=60 {
        let (x, targets) = harmony_models::data::copy_task_tokens(&mut rng, 8, 8, 32)?;
        let r = session.train_step(&x, &targets)?;
        if step == 1 || step % 10 == 0 {
            println!(
                "{step:>4}  {:.4}  {:>11.1}  {:>12.1}  {:>7.1}  {:?}",
                r.loss,
                r.swap_in_bytes as f64 / 1024.0,
                r.swap_out_bytes as f64 / 1024.0,
                r.p2p_bytes as f64 / 1024.0,
                r.peak_bytes.iter().map(|b| b / 1024).collect::<Vec<_>>()
            );
        }
    }
    println!("\nThe model trained under hard memory pressure — \"doing more with less\".");
    Ok(())
}
