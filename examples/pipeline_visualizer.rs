//! Renders the Fig 4 schedule: a four-layer "large" model trained with
//! virtualized pipeline parallelism on two GPUs, two microbatches per GPU.
//!
//! Prints text Gantt charts for Harmony-PP (input-batch grouping: each
//! layer runs both microbatches back-to-back; p2p handoffs; JIT updates)
//! and for the 1F1B baseline, so the structural difference is visible at a
//! glance.
//!
//! Run with: `cargo run --example pipeline_visualizer`

use harmony::prelude::presets::{commodity_server, CommodityParams, GBPS};
use harmony::prelude::*;
use harmony::simulate::{self, SchemeKind};

fn uniform_model(layers: usize) -> ModelSpec {
    ModelSpec {
        name: format!("uniform-{layers}"),
        layers: (0..layers)
            .map(|i| LayerSpec {
                name: format!("L{i}"),
                class: LayerClass::Other,
                params: 1 << 16,               // 256 KiB weights
                fwd_flops_per_sample: 1 << 26, // ≈ one weight transfer
                out_elems_per_sample: 1 << 15, // 128 KiB activations
                extra_stash_elems_per_sample: 1 << 15,
                in_elems_per_sample: 1 << 15,
            })
            .collect(),
        seq_len: 1,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig 4's setting: four uniform layers, two GPUs, one microbatch per
    // GPU (⇒ two microbatches flowing through the pipeline), memory tight
    // enough that state must be swapped.
    let model = uniform_model(4);
    let topo = commodity_server(CommodityParams {
        num_gpus: 2,
        gpus_per_switch: 2,
        pcie_bw: 8.0 * GBPS,
        host_uplink_bw: 8.0 * GBPS,
        gpu_mem: 1_600 * 1024, // below one stage's state: weights must swap
        gpu_flops: 2e12,
    })?;
    let workload = WorkloadConfig {
        microbatches: 1, // × 2 GPUs = 2 microbatches through the pipeline
        ubatch_size: 1,
        pack_size: 1,
        opt_slots: 2,
        group_size: None,
        recompute: false,
    };

    for scheme in [SchemeKind::HarmonyPp, SchemeKind::BaselinePp] {
        let (summary, trace) = simulate::run(scheme, &model, &topo, &workload)?;
        println!("{}", gantt::render(&trace, 100));
        println!("{}\n", summary.one_line());
    }
    println!(
        "Note how Harmony-PP (top) runs each layer's two microbatches \
         back-to-back (input-batch grouping), hands activations to the peer \
         GPU over p2p (`=`), and updates layers immediately after their \
         backward (JIT) — while the baseline interleaves per-microbatch and \
         swaps against host (`<`/`>`) instead."
    );
    Ok(())
}
