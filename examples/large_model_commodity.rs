//! The paper's headline scenario: a ~10 B-parameter GPT-style model on a
//! commodity server with four 11 GB GPUs (the Fig 2 testbed), whose
//! per-stage training state alone exceeds a GPU several times over.
//!
//! Simulates one training iteration under all four schemes — with the
//! Harmony-PP group size tuned by a small sweep, as Harmony's Performance
//! Tuner would — and prints the comparison the paper argues for:
//! Harmony-DP cuts swap volume versus data-parallel per-GPU
//! virtualization, and Harmony-PP dominates every scheme on swap volume
//! while the tuned group size keeps its pipeline utilisation competitive.
//!
//! Run with: `cargo run --release --example large_model_commodity`

use harmony::prelude::*;
use harmony::simulate::{self, SchemeKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = TransformerConfig::gpt_10b().build();
    let topo = presets::commodity_4x1080ti();
    let workload = WorkloadConfig {
        microbatches: 2,
        ubatch_size: 5, // the paper's per-GPU batch size
        pack_size: 1,
        opt_slots: 2, // Adam
        group_size: None,
        recompute: false,
    };

    println!(
        "model   : {} ({:.2} B params)",
        model.name,
        model.total_params() as f64 / 1e9
    );
    println!(
        "footprint: {:.1} GB training state+stash vs {} GPUs × 11 GB",
        model.training_footprint_bytes(workload.ubatch_size, workload.opt_slots) as f64 / 1e9,
        topo.num_gpus()
    );
    println!(
        "server  : {} (host oversubscription {:.0}:1)\n",
        topo.name,
        topo.host_oversubscription()
    );

    let mut table = Table::new(
        "One iteration, four schemes",
        &[
            "scheme",
            "throughput (seqs/s)",
            "swap in (GB)",
            "swap out (GB)",
            "p2p (GB)",
            "swap imbalance",
        ],
    );
    let mut results = Vec::new();
    for scheme in SchemeKind::ALL {
        // Tune the Harmony-PP group size with a quick sweep (§4 tango).
        let workload = if scheme == SchemeKind::HarmonyPp {
            let mut best = workload;
            let mut best_tp = 0.0;
            for g in [1usize, 2, 4, 8] {
                let w = WorkloadConfig {
                    group_size: Some(g),
                    ..workload
                };
                let (s, _) = simulate::run(scheme, &model, &topo, &w)?;
                if s.throughput() > best_tp {
                    best_tp = s.throughput();
                    best = w;
                }
            }
            println!("tuned harmony-pp group size: {:?}\n", best.group_size);
            best
        } else {
            workload
        };
        let (summary, _) = simulate::run(scheme, &model, &topo, &workload)?;
        table.row(&[
            scheme.name().to_string(),
            f2(summary.throughput()),
            gb(summary.global_swap_in()),
            gb(summary.global_swap_out()),
            gb(summary.p2p_bytes),
            summary
                .swap_imbalance()
                .map_or_else(|| "one-sided".to_string(), f2),
        ]);
        results.push((scheme, summary));
    }
    println!("{}", table.render());

    let swap = |k: SchemeKind| {
        results
            .iter()
            .find(|(s, _)| *s == k)
            .map(|(_, r)| r.global_swap())
            .unwrap_or(0)
    };
    println!(
        "Harmony-DP reduces swap volume {:.1}× vs baseline DP; Harmony-PP {:.1}×.",
        swap(SchemeKind::BaselineDp) as f64 / swap(SchemeKind::HarmonyDp).max(1) as f64,
        swap(SchemeKind::BaselineDp) as f64 / swap(SchemeKind::HarmonyPp).max(1) as f64,
    );
    Ok(())
}
