//! A tour of the Fig-1 model zoo through the simulator: from LeNet (which
//! fits anywhere, 1998) to a 10 B-parameter transformer (which fits
//! nowhere, 2020-class), each scheduled with baseline DP and Harmony-DP on
//! the paper's 4 × 11 GB commodity server.
//!
//! Shows where virtualization starts to matter (AlexNet's Adam state is
//! ~1 GB — trivial; the transformers blow past aggregate GPU memory) and
//! how Harmony's savings grow with the pressure.
//!
//! Run with: `cargo run --release --example zoo_tour`

use harmony::prelude::*;
use harmony::simulate::{self, SchemeKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = presets::commodity_4x1080ti();
    let workload = WorkloadConfig {
        microbatches: 2,
        ubatch_size: 4,
        pack_size: 1,
        opt_slots: 2,
        group_size: None,
        recompute: false,
    };
    let models: Vec<(&str, ModelSpec)> = vec![
        ("LeNet-5 (1998)", harmony_models::cnn::lenet()),
        ("AlexNet (2012)", harmony_models::cnn::alexnet()),
        (
            "BERT-XXL-class (2019)",
            TransformerConfig::bert_xxl().build(),
        ),
        ("GPT-10B-class (2020)", TransformerConfig::gpt_10b().build()),
    ];

    let mut table = Table::new(
        "The zoo on a 4×11 GB commodity server (one iteration)",
        &[
            "model",
            "params",
            "train state (GB)",
            "baseline-dp swap (GB)",
            "harmony-dp swap (GB)",
            "saving",
        ],
    );
    for (label, model) in &models {
        let state = model.total_params() * 16; // W + dW + Adam
        let run =
            |scheme| simulate::run(scheme, model, &topo, &workload).map(|(s, _)| s.global_swap());
        let b = run(SchemeKind::BaselineDp)?;
        let h = run(SchemeKind::HarmonyDp)?;
        table.row(&[
            label.to_string(),
            format!("{:.2}M", model.total_params() as f64 / 1e6),
            gb(state),
            gb(b),
            gb(h),
            if b == 0 {
                "— (fits)".to_string()
            } else {
                format!("{:.1}×", b as f64 / h.max(1) as f64)
            },
        ]);
    }
    println!("{}", table.render());
    println!(
        "Small models never touch the host link; once the training state\n\
         outgrows the GPUs, Harmony's grouping/JIT/clean-drop machinery is\n\
         what keeps the swap volume (and the oversubscribed uplink) in check."
    );
    Ok(())
}
