//! Memory-pressure lab: how far can you shrink the "GPU" before training
//! breaks, and what does it cost?
//!
//! Trains the same model through the Harmony functional runtime while
//! sweeping the virtual device capacity downward: swap traffic rises as
//! memory shrinks, the loss trajectory stays *identical* (scheduling and
//! swapping never change semantics), and below the single-task working-set
//! floor the session reports a typed error instead of thrashing.
//!
//! Run with: `cargo run --example memory_pressure_lab`

use harmony::functional::HarmonyError;
use harmony::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let steps = 20;
    // Learnable task: each class brightens its own slice of features.
    let make_batch = |rng: &mut SplitMix64| {
        harmony_models::data::classification_blobs(rng, 8, 24, 4).expect("valid batch")
    };

    println!("capacity KiB | trained? | final loss | swapped KiB/step | peak KiB");
    let mut reference_losses: Option<Vec<f32>> = None;
    for capacity_kib in [256u64, 96, 64, 48, 24, 8] {
        let model = mlp(&[24, 48, 48, 4]);
        let session = FunctionalSession::new(
            model,
            SessionConfig {
                device_capacities: vec![capacity_kib * 1024],
                microbatches: 2,
                optimizer: Optimizer::adam(5e-3),
                seed: 9,
            },
        );
        let mut session = match session {
            Ok(s) => s,
            Err(e) => {
                println!("{capacity_kib:>12} | config error: {e}");
                continue;
            }
        };
        let mut rng = SplitMix64::new(31);
        let mut losses = Vec::new();
        let mut swapped = 0u64;
        let mut peak = 0u64;
        let mut failed: Option<HarmonyError> = None;
        for _ in 0..steps {
            let (x, t) = make_batch(&mut rng);
            match session.train_step(&x, &t) {
                Ok(r) => {
                    losses.push(r.loss);
                    swapped += r.swap_in_bytes + r.swap_out_bytes;
                    peak = peak.max(*r.peak_bytes.iter().max().unwrap_or(&0));
                }
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        match failed {
            Some(e) => println!("{capacity_kib:>12} | no — {e}"),
            None => {
                println!(
                    "{capacity_kib:>12} | yes      | {:>10.4} | {:>16.1} | {:>8.1}",
                    losses.last().copied().unwrap_or(f32::NAN),
                    swapped as f64 / 1024.0 / steps as f64,
                    peak as f64 / 1024.0
                );
                // Semantics never change with capacity: identical losses.
                match &reference_losses {
                    None => reference_losses = Some(losses),
                    Some(reference) => assert_eq!(
                        reference, &losses,
                        "capacity must not change training semantics"
                    ),
                }
            }
        }
    }
    println!(
        "\nSmaller devices trade swap traffic for capacity with *identical* \
         training trajectories — until a single task's working set no longer \
         fits, which fails loudly rather than thrashing."
    );
    Ok(())
}
